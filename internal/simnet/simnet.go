// Package simnet models a datacenter network at the fidelity dRAID's
// evaluation depends on: per-NIC full-duplex line-rate serialization, a
// non-blocking switch fabric, propagation and per-message latency, reliable
// FIFO connections (the RDMA RC stand-in), byte-level traffic accounting,
// and fault injection.
//
// A transfer of S bytes from node A to node B occupies A's chosen NIC
// outbound pipe for S/rate, travels PropDelay+PerMsgDelay, then occupies B's
// NIC inbound pipe for S/rate before delivery. Pipes are FIFO reservations
// (busy-until), so aggregate throughput through a NIC is capped at exactly
// its line rate — the arithmetic the paper's bandwidth arguments rest on.
package simnet

import (
	"fmt"

	"draid/internal/sim"
	"draid/internal/trace"
)

// Config holds network-wide parameters. The defaults mirror a modern
// datacenter fabric (the paper's Dell Z9264 + ConnectX-5 testbed).
type Config struct {
	// PropDelay is one-way propagation through the fabric.
	PropDelay sim.Duration
	// PerMsgDelay is fixed per-message processing (doorbell, completion,
	// DMA setup) added to every transfer.
	PerMsgDelay sim.Duration
	// HeaderBytes is wire overhead added to every message's size.
	HeaderBytes int64
	// Goodput derates NIC line rate for protocol overhead (0 < g ≤ 1).
	// The paper measures ~92 Gbps of goodput on a 100 Gbps NIC ⇒ 0.92.
	Goodput float64
}

// DefaultConfig returns parameters calibrated to the paper's testbed.
func DefaultConfig() Config {
	return Config{
		PropDelay:   2 * sim.Microsecond,
		PerMsgDelay: 1 * sim.Microsecond,
		HeaderBytes: 128,
		Goodput:     0.92,
	}
}

// Network is the fabric connecting all nodes.
type Network struct {
	Eng    *sim.Engine
	cfg    Config
	nodes  map[string]*Node
	tracer *trace.Collector
}

// SetTracer enables per-NIC serialization spans. Call before adding nodes so
// every NIC registers its track; nil disables.
func (n *Network) SetTracer(c *trace.Collector) { n.tracer = c }

// New creates an empty network on the given engine.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.Goodput <= 0 || cfg.Goodput > 1 {
		panic(fmt.Sprintf("simnet: goodput %v out of (0,1]", cfg.Goodput))
	}
	return &Network{Eng: eng, cfg: cfg, nodes: make(map[string]*Node)}
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// NewNode adds a node. Names must be unique.
func (n *Network) NewNode(name string) *Node {
	if _, dup := n.nodes[name]; dup {
		panic("simnet: duplicate node " + name)
	}
	nd := &Node{name: name, net: n}
	n.nodes[name] = nd
	return nd
}

// Node returns the named node, or nil.
func (n *Network) Node(name string) *Node { return n.nodes[name] }

// pipe is a FIFO bandwidth reservation: each transfer occupies the pipe for
// size/rate, queued behind earlier transfers.
type pipe struct {
	rate      float64 // bytes per virtual nanosecond
	busyUntil sim.Time
	busyTotal sim.Duration // accumulated service time, for utilization
	bytes     int64
	msgs      int64
}

func (p *pipe) reserve(now sim.Time, size int64) (start, done sim.Time) {
	start = now
	if p.busyUntil > start {
		start = p.busyUntil
	}
	svc := sim.Duration(float64(size) / p.rate)
	p.busyUntil = start + sim.Time(svc)
	p.busyTotal += svc
	p.bytes += size
	p.msgs++
	return start, p.busyUntil
}

// NIC is one network interface with full-duplex line rate.
type NIC struct {
	name    string
	node    *Node
	rateBps int64 // raw line rate in bits/sec (before goodput derating)
	out, in pipe
	conns   int // connections placed on this NIC, for least-used placement
	// txTrack/rxTrack are tracing timelines for the two pipes (tracer != nil).
	txTrack, rxTrack trace.Track
}

// GbpsToBps converts gigabits/sec to bits/sec.
func GbpsToBps(gbps float64) int64 { return int64(gbps * 1e9) }

// RateBps returns the NIC's raw line rate in bits per second.
func (c *NIC) RateBps() int64 { return c.rateBps }

// GoodputBytesPerSec returns the usable payload rate in bytes per second.
func (c *NIC) GoodputBytesPerSec() float64 {
	return float64(c.rateBps) / 8 * c.node.net.cfg.Goodput
}

// Name returns "node/nic".
func (c *NIC) Name() string { return c.node.name + "/" + c.name }

// BytesOut and BytesIn return cumulative payload+header bytes through the NIC.
func (c *NIC) BytesOut() int64 { return c.out.bytes }

// BytesIn returns cumulative inbound bytes through the NIC.
func (c *NIC) BytesIn() int64 { return c.in.bytes }

// BusyOut returns accumulated outbound service time (for utilization math).
func (c *NIC) BusyOut() sim.Duration { return c.out.busyTotal }

// BusyIn returns accumulated inbound service time.
func (c *NIC) BusyIn() sim.Duration { return c.in.busyTotal }

// Node is a machine on the fabric: a host or a storage server.
type Node struct {
	name string
	net  *Network
	nics []*NIC
	down bool
}

// Name returns the node name.
func (nd *Node) Name() string { return nd.name }

// AddNIC attaches a NIC with the given line rate in Gbps.
func (nd *Node) AddNIC(name string, gbps float64) *NIC {
	rate := float64(GbpsToBps(gbps)) / 8 * nd.net.cfg.Goodput / 1e9 // bytes per ns
	nic := &NIC{
		name: name, node: nd, rateBps: GbpsToBps(gbps),
		out: pipe{rate: rate}, in: pipe{rate: rate},
	}
	if t := nd.net.tracer; t.Enabled() {
		nic.txTrack = t.Track(nd.name, name+".tx")
		nic.rxTrack = t.Track(nd.name, name+".rx")
		t.AddGauge(nic.txTrack, nd.name+"/"+name+" tx util",
			trace.UtilizationGauge(nd.net.Eng, func() sim.Duration { return nic.out.busyTotal }))
		t.AddGauge(nic.rxTrack, nd.name+"/"+name+" rx util",
			trace.UtilizationGauge(nd.net.Eng, func() sim.Duration { return nic.in.busyTotal }))
	}
	nd.nics = append(nd.nics, nic)
	return nic
}

// NICs returns the node's NICs.
func (nd *Node) NICs() []*NIC { return nd.nics }

// leastUsedNIC implements the paper's §5.5 placement rule: new connections
// go on the NIC with the fewest connections (ties: first added).
func (nd *Node) leastUsedNIC() *NIC {
	if len(nd.nics) == 0 {
		panic("simnet: node " + nd.name + " has no NIC")
	}
	best := nd.nics[0]
	for _, c := range nd.nics[1:] {
		if c.conns < best.conns {
			best = c
		}
	}
	return best
}

// SetDown marks the node failed (true) or recovered (false). Messages to or
// from a down node are silently dropped — the sender learns only via its own
// timeout, as on a real fabric.
func (nd *Node) SetDown(down bool) { nd.down = down }

// Down reports the node's failure state.
func (nd *Node) Down() bool { return nd.down }

// BytesOut sums outbound bytes over all NICs.
func (nd *Node) BytesOut() int64 {
	var t int64
	for _, c := range nd.nics {
		t += c.out.bytes
	}
	return t
}

// BytesIn sums inbound bytes over all NICs.
func (nd *Node) BytesIn() int64 {
	var t int64
	for _, c := range nd.nics {
		t += c.in.bytes
	}
	return t
}

// ResetCounters zeroes all NIC byte/message counters (not busy state).
func (nd *Node) ResetCounters() {
	for _, c := range nd.nics {
		c.out.bytes, c.out.msgs, c.in.bytes, c.in.msgs = 0, 0, 0, 0
	}
}

// Conn is a reliable FIFO connection between two nodes (an RDMA RC queue
// pair). Each endpoint is pinned to one NIC chosen at connect time by the
// least-used rule.
type Conn struct {
	net   *Network
	aNode *Node
	bNode *Node
	aNIC  *NIC
	bNIC  *NIC
	// Fault injection is per direction (index 0: a→b, index 1: b→a), so
	// asymmetric faults — host→target lost while target→host delivers — are
	// expressible. InjectDrop/InjectDelay set both directions.
	dropProb    [2]float64
	corruptProb [2]float64
	delay       [2]sim.Duration
	// partitioned cuts a direction entirely: every message vanishes in the
	// fabric after consuming sender bandwidth, exactly like a message to a
	// down node. Unlike dropProb it is deterministic (no RNG draw), so
	// arming or healing a partition never perturbs the engine RNG stream —
	// and it composes with drop/corrupt/delay injection on the same
	// connection.
	partitioned [2]bool
	// duplicate arms a one-shot per-direction duplication: the next message
	// sent that way is delivered twice back to back (each copy consuming
	// receiver bandwidth), modeling a retransmission the fabric resolved
	// late. Deterministic — no RNG draw — and self-clearing.
	duplicate [2]bool
}

// Connect establishes a connection between two distinct nodes.
func (n *Network) Connect(a, b *Node) *Conn {
	if a == b {
		panic("simnet: connecting node to itself")
	}
	an, bn := a.leastUsedNIC(), b.leastUsedNIC()
	an.conns++
	bn.conns++
	return &Conn{net: n, aNode: a, bNode: b, aNIC: an, bNIC: bn}
}

// dir maps a sending endpoint to its direction index.
func (c *Conn) dir(from *Node) int {
	switch from {
	case c.aNode:
		return 0
	case c.bNode:
		return 1
	}
	panic("simnet: node " + from.name + " not an endpoint")
}

// InjectDrop makes each message on this connection, in either direction, be
// dropped with probability p (deterministically via the engine RNG). Used
// for transient failure tests.
func (c *Conn) InjectDrop(p float64) { c.dropProb[0], c.dropProb[1] = p, p }

// InjectDropDirection drops messages sent BY from with probability p; the
// reverse direction is untouched. An asymmetric fault: requests vanish while
// responses (or vice versa) still flow.
func (c *Conn) InjectDropDirection(from *Node, p float64) { c.dropProb[c.dir(from)] = p }

// InjectCorrupt makes each message on this connection, in either direction,
// arrive with its payload corrupted with probability p (deterministically via
// the engine RNG). Corrupted messages consume full bandwidth on both ends —
// unlike drops, the bytes do arrive — and are flagged to the receiver via
// SendChecked, modeling a link that flips bits which only an end-to-end
// checksum above the transport can catch.
func (c *Conn) InjectCorrupt(p float64) { c.corruptProb[0], c.corruptProb[1] = p, p }

// InjectCorruptDirection corrupts only messages sent BY from.
func (c *Conn) InjectCorruptDirection(from *Node, p float64) { c.corruptProb[c.dir(from)] = p }

// InjectDelay adds d to every message's latency on this connection, in both
// directions.
func (c *Conn) InjectDelay(d sim.Duration) { c.delay[0], c.delay[1] = d, d }

// InjectDelayDirection adds d only to messages sent BY from.
func (c *Conn) InjectDelayDirection(from *Node, d sim.Duration) { c.delay[c.dir(from)] = d }

// InjectPartition cuts the connection in both directions: a symmetric
// network partition of this node pair. Messages already in flight still
// deliver — the cut applies at send time, like a switch rule installed now.
func (c *Conn) InjectPartition() { c.partitioned[0], c.partitioned[1] = true, true }

// InjectPartitionDirection cuts only messages sent BY from — the asymmetric
// partition where one side keeps hearing the other.
func (c *Conn) InjectPartitionDirection(from *Node) { c.partitioned[c.dir(from)] = true }

// HealPartition restores the connection in both directions.
func (c *Conn) HealPartition() { c.partitioned[0], c.partitioned[1] = false, false }

// HealPartitionDirection restores only the direction sent BY from.
func (c *Conn) HealPartitionDirection(from *Node) { c.partitioned[c.dir(from)] = false }

// PartitionedFrom reports whether messages sent BY from are currently cut.
func (c *Conn) PartitionedFrom(from *Node) bool { return c.partitioned[c.dir(from)] }

// InjectDuplicateOnce arms a one-shot duplication in both directions: the
// next message either way arrives twice.
func (c *Conn) InjectDuplicateOnce() { c.duplicate[0], c.duplicate[1] = true, true }

// InjectDuplicateOnceDirection arms a one-shot duplication only for the next
// message sent BY from.
func (c *Conn) InjectDuplicateOnceDirection(from *Node) { c.duplicate[c.dir(from)] = true }

// Peer returns the node opposite from.
func (c *Conn) Peer(from *Node) *Node {
	switch from {
	case c.aNode:
		return c.bNode
	case c.bNode:
		return c.aNode
	}
	panic("simnet: node " + from.name + " not an endpoint")
}

// Send transmits size payload bytes from `from` to the opposite endpoint and
// runs deliver at the receiver when the last byte arrives. Dropped messages
// (down node or injected fault) consume sender bandwidth but never deliver.
// Size 0 is allowed (pure control message); header bytes still apply.
func (c *Conn) Send(from *Node, size int64, deliver func()) {
	c.SendChecked(from, size, func(bool) { deliver() })
}

// SendChecked is Send for transports that checksum their payloads end to
// end: deliver receives whether fault injection corrupted the message in
// flight, so the receiver can model checksum validation (typically by
// discarding the message and letting the sender's timeout fire). Callers
// that ignore the flag get plain Send semantics — corruption passes through
// silently, as on a real link with no end-to-end check.
func (c *Conn) SendChecked(from *Node, size int64, deliver func(corrupted bool)) {
	if size < 0 {
		panic("simnet: negative message size")
	}
	d := c.dir(from)
	var src, dst *NIC
	if d == 0 {
		src, dst = c.aNIC, c.bNIC
	} else {
		src, dst = c.bNIC, c.aNIC
	}
	eng := c.net.Eng
	to := c.Peer(from)
	wire := size + c.net.cfg.HeaderBytes
	txStart, sent := src.pipeOut().reserve(eng.Now(), wire)
	if t := c.net.tracer; t.Enabled() {
		t.Span(src.txTrack, "net", "tx→"+to.name, txStart, sent, trace.I64("bytes", wire))
	}
	if from.down || to.down {
		return // consumed sender bandwidth; vanishes in the fabric
	}
	if c.partitioned[d] {
		return // cut by an injected partition; no RNG draw, stream untouched
	}
	if c.dropProb[d] > 0 && eng.Rand().Float64() < c.dropProb[d] {
		return
	}
	// Sampled only when injection is armed, so the engine RNG stream — and
	// with it every existing seeded scenario — is untouched by default.
	corrupted := c.corruptProb[d] > 0 && eng.Rand().Float64() < c.corruptProb[d]
	copies := 1
	if c.duplicate[d] {
		c.duplicate[d] = false
		copies = 2
	}
	arrive := sent + sim.Time(c.net.cfg.PropDelay+c.net.cfg.PerMsgDelay+c.delay[d])
	eng.At(arrive, func() {
		if to.down || from.down {
			return
		}
		for i := 0; i < copies; i++ {
			rxStart, done := dst.pipeIn().reserve(eng.Now(), wire)
			if t := c.net.tracer; t.Enabled() {
				t.Span(dst.rxTrack, "net", "rx←"+from.name, rxStart, done, trace.I64("bytes", wire))
			}
			eng.At(done, func() { deliver(corrupted) })
		}
	})
}

func (c *NIC) pipeOut() *pipe { return &c.out }
func (c *NIC) pipeIn() *pipe  { return &c.in }
