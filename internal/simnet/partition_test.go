package simnet

import (
	"testing"

	"draid/internal/sim"
)

func TestInjectPartitionCutsBothDirections(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	conn.InjectPartition()
	delivered := 0
	conn.Send(a, 1000, func() { delivered++ })
	conn.Send(b, 1000, func() { delivered++ })
	eng.Run()
	if delivered != 0 {
		t.Fatalf("%d messages crossed a symmetric partition", delivered)
	}
	if !conn.PartitionedFrom(a) || !conn.PartitionedFrom(b) {
		t.Fatal("PartitionedFrom should report both directions cut")
	}
}

func TestInjectPartitionDirectionIsAsymmetric(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	conn.InjectPartitionDirection(a)
	var fromA, fromB int
	conn.Send(a, 1000, func() { fromA++ })
	conn.Send(b, 1000, func() { fromB++ })
	eng.Run()
	if fromA != 0 {
		t.Fatal("a→b should be cut")
	}
	if fromB != 1 {
		t.Fatal("b→a should still deliver")
	}
	if !conn.PartitionedFrom(a) || conn.PartitionedFrom(b) {
		t.Fatal("only the a→b direction should report cut")
	}
}

func TestHealPartitionRestoresDelivery(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	conn.InjectPartition()
	delivered := 0
	conn.Send(a, 1000, func() { delivered++ })
	eng.Run()
	if delivered != 0 {
		t.Fatal("partitioned send delivered")
	}
	conn.HealPartition()
	conn.Send(a, 1000, func() { delivered++ })
	conn.Send(b, 1000, func() { delivered++ })
	eng.Run()
	if delivered != 2 {
		t.Fatalf("after heal %d/2 messages delivered", delivered)
	}
}

func TestHealPartitionDirection(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	conn.InjectPartition()
	conn.HealPartitionDirection(b)
	var fromA, fromB int
	conn.Send(a, 1000, func() { fromA++ })
	conn.Send(b, 1000, func() { fromB++ })
	eng.Run()
	if fromA != 0 || fromB != 1 {
		t.Fatalf("fromA=%d fromB=%d, want 0 and 1 after healing only b→a", fromA, fromB)
	}
}

// A partitioned message is dropped silently: no delivery, no error, and the
// send still consumes outbound NIC time (the sender cannot tell).
func TestPartitionConsumesSendBandwidth(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	conn.InjectPartition()
	conn.Send(a, 1000, func() { t.Fatal("delivered across partition") })
	eng.Run()
	if got := a.nics[0].BusyOut(); got == 0 {
		t.Fatal("partitioned send should still serialize out the sender's NIC")
	}
}

func TestInjectDuplicateOnceDeliversTwiceThenClears(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	conn.InjectDuplicateOnce()
	delivered := 0
	conn.Send(a, 1000, func() { delivered++ })
	eng.Run()
	if delivered != 2 {
		t.Fatalf("duplicated send delivered %d times, want 2", delivered)
	}
	// One-shot: the next send is back to a single delivery.
	conn.Send(a, 1000, func() { delivered++ })
	eng.Run()
	if delivered != 3 {
		t.Fatalf("post-duplicate send delivered %d total, want 3", delivered)
	}
}

func TestInjectDuplicateOnceDirection(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	conn.InjectDuplicateOnceDirection(a)
	var fromA, fromB int
	conn.Send(a, 1000, func() { fromA++ })
	conn.Send(b, 1000, func() { fromB++ })
	eng.Run()
	if fromA != 2 || fromB != 1 {
		t.Fatalf("fromA=%d fromB=%d, want 2 and 1 (only a→b armed)", fromA, fromB)
	}
}

// Duplication composes with partition: the armed duplicate stays pending
// while the link is cut and fires on the first delivered message after heal.
func TestDuplicateSurvivesPartition(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	conn.InjectDuplicateOnceDirection(a)
	conn.InjectPartition()
	delivered := 0
	conn.Send(a, 1000, func() { delivered++ })
	eng.Run()
	if delivered != 0 {
		t.Fatal("partition should drop before duplication applies")
	}
	conn.HealPartition()
	conn.Send(a, 1000, func() { delivered++ })
	eng.Run()
	if delivered != 2 {
		t.Fatalf("first post-heal send delivered %d times, want 2", delivered)
	}
}

// Injections draw no randomness, so arming a partition or duplicate must not
// perturb the RNG sequence other injections (drop, corrupt) consume.
func TestPartitionDoesNotPerturbRNG(t *testing.T) {
	run := func(usePartition bool) []sim.Time {
		eng := sim.NewEngine(42)
		net := New(eng, Config{Goodput: 1.0})
		a := net.NewNode("a")
		b := net.NewNode("b")
		a.AddNIC("nic0", 8)
		b.AddNIC("nic0", 8)
		conn := net.Connect(a, b)
		conn.InjectDrop(0.5)
		if usePartition {
			conn.InjectPartition()
			conn.HealPartition()
			conn.InjectDuplicateOnce()
			conn.duplicate[0], conn.duplicate[1] = false, false
		}
		var times []sim.Time
		for i := 0; i < 32; i++ {
			conn.Send(a, 100, func() { times = append(times, eng.Now()) })
		}
		eng.Run()
		return times
	}
	base, with := run(false), run(true)
	if len(base) != len(with) {
		t.Fatalf("drop pattern diverged: %d vs %d deliveries", len(base), len(with))
	}
	for i := range base {
		if base[i] != with[i] {
			t.Fatalf("delivery %d at %d vs %d: partition arming perturbed the RNG", i, base[i], with[i])
		}
	}
}
