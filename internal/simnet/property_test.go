package simnet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"draid/internal/sim"
)

// Property: with no faults, bytes are conserved — every sender's outbound
// total equals the receivers' inbound totals, every message is delivered
// exactly once, and arrivals never precede the physically possible time.
func TestPropertyConservationAndCausality(t *testing.T) {
	f := func(seed int64, sizesRaw []uint16) bool {
		if len(sizesRaw) == 0 {
			return true
		}
		if len(sizesRaw) > 64 {
			sizesRaw = sizesRaw[:64]
		}
		eng := sim.NewEngine(seed)
		cfg := Config{PropDelay: 100, PerMsgDelay: 10, HeaderBytes: 32, Goodput: 1.0}
		net := New(eng, cfg)
		nodes := []*Node{net.NewNode("a"), net.NewNode("b"), net.NewNode("c")}
		for _, n := range nodes {
			n.AddNIC("nic0", 8) // 1 B/ns
		}
		conns := map[[2]int]*Conn{}
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				conns[[2]int{i, j}] = net.Connect(nodes[i], nodes[j])
			}
		}
		rng := rand.New(rand.NewSource(seed))
		delivered := 0
		var totalWire int64
		for _, raw := range sizesRaw {
			i, j := rng.Intn(3), rng.Intn(3)
			if i == j {
				j = (j + 1) % 3
			}
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			c := conns[[2]int{lo, hi}]
			size := int64(raw)
			sendTime := eng.Now()
			minArrival := sendTime + sim.Time(size+cfg.HeaderBytes) /* out */ +
				sim.Time(cfg.PropDelay+cfg.PerMsgDelay)
			c.Send(nodes[i], size, func() {
				delivered++
				if eng.Now() < minArrival {
					t.Errorf("arrival %v before physical minimum %v", eng.Now(), minArrival)
				}
			})
			totalWire += size + cfg.HeaderBytes
		}
		eng.Run()
		if delivered != len(sizesRaw) {
			return false
		}
		var out, in int64
		for _, n := range nodes {
			out += n.BytesOut()
			in += n.BytesIn()
		}
		return out == totalWire && in == totalWire
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: FIFO per direction — messages sent in order on one connection
// direction are delivered in order.
func TestPropertyFIFODelivery(t *testing.T) {
	f := func(seed int64, sizesRaw []uint16) bool {
		if len(sizesRaw) < 2 {
			return true
		}
		if len(sizesRaw) > 32 {
			sizesRaw = sizesRaw[:32]
		}
		eng := sim.NewEngine(seed)
		net := New(eng, Config{Goodput: 1.0})
		a := net.NewNode("a")
		b := net.NewNode("b")
		a.AddNIC("nic0", 8)
		b.AddNIC("nic0", 8)
		c := net.Connect(a, b)
		var got []int
		for idx, raw := range sizesRaw {
			idx := idx
			c.Send(a, int64(raw), func() { got = append(got, idx) })
		}
		eng.Run()
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return len(got) == len(sizesRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Goodput <= 0.8 || cfg.Goodput > 1 {
		t.Fatalf("goodput = %v", cfg.Goodput)
	}
	if cfg.PropDelay <= 0 || cfg.HeaderBytes <= 0 {
		t.Fatal("default config has zero overheads")
	}
	eng := sim.NewEngine(1)
	net := New(eng, cfg)
	if net.Config() != cfg {
		t.Fatal("Config() mismatch")
	}
}

func TestBadGoodputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(sim.NewEngine(1), Config{Goodput: 1.5})
}

func TestPeerUnknownNodePanics(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng, Config{Goodput: 1})
	a := net.NewNode("a")
	b := net.NewNode("b")
	c := net.NewNode("c")
	for _, n := range []*Node{a, b, c} {
		n.AddNIC("nic0", 8)
	}
	conn := net.Connect(a, b)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	conn.Peer(c)
}

func TestDownAccessor(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng, Config{Goodput: 1})
	a := net.NewNode("a")
	if a.Down() {
		t.Fatal("new node should be up")
	}
	a.SetDown(true)
	if !a.Down() {
		t.Fatal("SetDown not reflected")
	}
}
