// Object-store comparison (paper §9.6, Figures 20-21): run YCSB workloads
// against the hash-based object store on dRAID vs the host-centric SPDK
// baseline, in normal and degraded states.
package main

import (
	"fmt"
	"time"

	"draid/internal/experiments"
	"draid/internal/sim"
	"draid/internal/ycsb"
)

func main() {
	o := experiments.Options{
		Ramp:    sim.Duration(20 * time.Millisecond),
		Measure: sim.Duration(80 * time.Millisecond),
	}
	fmt.Println("Object store on 8-wide RAID-5, 128 KB objects, uniform YCSB")
	fmt.Println()
	fmt.Printf("%-8s %-8s | %10s | %10s | ratio\n", "state", "workload", "SPDK", "dRAID")
	for _, state := range []struct {
		name   string
		failed []int
	}{{"normal", nil}, {"degraded", []int{0}}} {
		for _, wl := range []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadF} {
			spdk := experiments.YCSBObjectStore(experiments.SPDK, wl, state.failed, o)
			dr := experiments.YCSBObjectStore(experiments.DRAID, wl, state.failed, o)
			fmt.Printf("%-8s %-8s | %6.1f KIOPS | %6.1f KIOPS | %.2fx\n",
				state.name, wl.Name, spdk.KIOPS, dr.KIOPS, dr.KIOPS/spdk.KIOPS)
		}
	}
	fmt.Println()
	fmt.Println("dRAID's gains concentrate on write-heavy mixes (A, F) in normal state")
	fmt.Println("and extend to read-heavy mixes once reconstruction traffic appears.")
}
