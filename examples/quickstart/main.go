// Quickstart: build an 8-wide dRAID-5 array, write and read real data,
// degrade the array, and watch the host NIC traffic stay at ~1× — the
// paper's headline property.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"draid"
)

func main() {
	arr, err := draid.New(draid.Config{
		Drives:        8,
		ChunkSize:     512 << 10,
		DriveCapacity: 1 << 30, // 1 GB drives keep the demo snappy
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dRAID-5 array: 8 drives, %.1f GB virtual device\n", float64(arr.Size())/1e9)

	// Write one chunk's worth of data — a partial-stripe write, the case
	// dRAID disaggregates (read-modify-write with peer-to-peer parity).
	payload := make([]byte, 512<<10)
	rand.New(rand.NewSource(42)).Read(payload)
	arr.ResetTraffic()
	if err := arr.WriteSync(0, payload); err != nil {
		log.Fatal(err)
	}
	out, in := arr.HostTraffic()
	fmt.Printf("partial-stripe write: host sent %.2fx user bytes (in: %.2fx) — Table 1's 1x\n",
		float64(out)/float64(len(payload)), float64(in)/float64(len(payload)))

	got, err := arr.ReadSync(0, int64(len(payload)))
	if err != nil || !bytes.Equal(got, payload) {
		log.Fatalf("read-back mismatch (err=%v)", err)
	}
	fmt.Println("read-back verified byte-for-byte")

	// Fail the drive holding the chunk we just wrote. Reads of its chunks
	// are rebuilt by the storage servers themselves; only the requested
	// bytes cross the host NIC.
	arr.FailDrive(0)
	arr.ResetTraffic()
	got, err = arr.ReadSync(0, int64(len(payload)))
	if err != nil || !bytes.Equal(got, payload) {
		log.Fatalf("degraded read mismatch (err=%v)", err)
	}
	_, in = arr.HostTraffic()
	fmt.Printf("degraded read: host received %.2fx requested bytes — reconstruction stayed peer-to-peer\n",
		float64(in)/float64(len(payload)))
	fmt.Printf("stats: %+v\n", arr.Stats())

	// A quick bandwidth check (virtual time, so it completes instantly).
	res := arr.Benchmark(draid.BenchmarkSpec{
		IOSizeBytes: 128 << 10, QueueDepth: 12,
		Ramp: 20 * time.Millisecond, Measure: 50 * time.Millisecond,
	})
	fmt.Printf("degraded 128KB write benchmark: %.0f MB/s, avg %.0fus\n",
		res.BandwidthMBps, float64(res.AvgLatency.Microseconds()))
	fmt.Printf("virtual time elapsed: %v\n", arr.Now())
}
