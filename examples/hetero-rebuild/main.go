// Heterogeneous-network reducer selection (paper §6.2, Figure 17b): on an
// array whose targets mix 25 Gbps and 100 Gbps NICs, drive reconstruction
// load and compare random reducer selection against the bandwidth-aware
// max-min policy. The reducer absorbs (n−2) chunk transfers per rebuilt
// chunk, so parking that role on a 25 Gbps node is expensive — exactly what
// the max-min solve avoids.
package main

import (
	"fmt"

	"draid/internal/experiments"
)

func main() {
	fmt.Println("Reconstruction on 8-wide RAID-5 with alternating 100/25 Gbps target NICs")
	fmt.Println()
	fig, err := experiments.RunFigure("fig17b", experiments.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(fig.String())

	random := fig.Series[0].Points[0]
	aware := fig.Series[1].Points[0]
	fmt.Printf("at light load: bandwidth-aware %.0f MB/s vs random %.0f MB/s (%+.0f%%; paper: +53%%)\n",
		aware.BW, random.BW, 100*(aware.BW-random.BW)/random.BW)
}
