// Degraded-recovery walkthrough: lose a drive mid-workload, serve
// reconstructed reads, rebuild onto a replacement through the disaggregated
// reconstruction path, then survive a second failure — proving redundancy
// was actually restored.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
)

import "draid"

const chunk = 64 << 10

func main() {
	arr, err := draid.New(draid.Config{
		Drives:        5,
		ChunkSize:     chunk,
		DriveCapacity: 64 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Fill the first 16 stripes with known data.
	stripeData := int64(4 * chunk) // k=4 data chunks per stripe
	content := make([]byte, 16*stripeData)
	rand.New(rand.NewSource(7)).Read(content)
	if err := arr.WriteSync(0, content); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seeded %d KB across 16 stripes\n", len(content)>>10)

	// Drive 2 dies. Everything still reads, reconstructed on the fly.
	arr.FailDrive(2)
	got, err := arr.ReadSync(0, int64(len(content)))
	if err != nil || !bytes.Equal(got, content) {
		log.Fatalf("degraded read failed (err=%v)", err)
	}
	fmt.Printf("degraded reads OK; reconstructions so far: %d\n", arr.Stats().Reconstructions)

	// Writes keep working too — parity absorbs updates to the lost chunk.
	update := make([]byte, chunk)
	rand.New(rand.NewSource(8)).Read(update)
	if err := arr.WriteSync(0, update); err != nil {
		log.Fatal(err)
	}
	copy(content[:chunk], update)
	fmt.Println("degraded write absorbed by parity")

	// Replace the drive and rebuild its 16 used stripes.
	if err := arr.RebuildDrive(2, 16); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebuild complete; failed drives now: %v\n", arr.FailedDrives())

	// Prove redundancy is back: lose a DIFFERENT drive and read everything.
	arr.FailDrive(0)
	got, err = arr.ReadSync(0, int64(len(content)))
	if err != nil || !bytes.Equal(got, content) {
		log.Fatalf("read after second failure mismatch (err=%v)", err)
	}
	fmt.Println("second failure survived — redundancy fully restored")
	fmt.Printf("virtual time: %v, host stats: %+v\n", arr.Now(), arr.Stats())
}
