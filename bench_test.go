// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment (shrunk sweeps, short
// virtual windows — use cmd/draid-bench for full-fidelity runs) and reports
// the headline dRAID metric so regressions in the reproduced shapes are
// visible in benchmark output.
//
//	go test -bench=Fig10 .          # one figure
//	go test -bench=. -benchmem .    # everything
package draid_test

import (
	"testing"

	"draid/internal/experiments"
	"draid/internal/sim"
)

func benchOptions() experiments.Options {
	return experiments.Options{
		Quick:   true,
		Ramp:    10 * sim.Millisecond,
		Measure: 40 * sim.Millisecond,
	}
}

// benchFigure runs one registered experiment per iteration and reports the
// final point of the last (dRAID-side) series.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.RunFigure(id, o)
		if err != nil {
			b.Fatal(err)
		}
		last := fig.Series[len(fig.Series)-1]
		p := last.Points[len(last.Points)-1]
		b.ReportMetric(p.BW, "MB/s")
		b.ReportMetric(p.Lat, "us")
	}
}

// BenchmarkFigAllQuick regenerates a representative figure batch through the
// batch API, serial vs parallel — the harness-level speedup measurement
// (identical output is asserted by TestParallelRunsAreByteIdentical in
// internal/experiments).
func BenchmarkFigAllQuick(b *testing.B) {
	ids := []string{"table1", "fig10", "fig12", "fig16", "ablation-pipeline"}
	for _, par := range []int{1, 8} {
		b.Run(map[int]string{1: "serial", 8: "parallel8"}[par], func(b *testing.B) {
			o := benchOptions()
			o.Parallel = par
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunAll(ids, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(benchOptions())
		b.ReportMetric(rows[2].WriteOverhead, "write-overhead-x")
		b.ReportMetric(rows[2].DReadOverhead, "dread-overhead-x")
	}
}

func BenchmarkFig09(b *testing.B)  { benchFigure(b, "fig09") }
func BenchmarkFig10(b *testing.B)  { benchFigure(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchFigure(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchFigure(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchFigure(b, "fig13") }
func BenchmarkFig14a(b *testing.B) { benchFigure(b, "fig14a") }
func BenchmarkFig14b(b *testing.B) { benchFigure(b, "fig14b") }
func BenchmarkFig15(b *testing.B)  { benchFigure(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { benchFigure(b, "fig16") }
func BenchmarkFig17a(b *testing.B) { benchFigure(b, "fig17a") }
func BenchmarkFig17b(b *testing.B) { benchFigure(b, "fig17b") }
func BenchmarkFig18(b *testing.B)  { benchFigure(b, "fig18") }
func BenchmarkFig19a(b *testing.B) { benchFigure(b, "fig19a") }
func BenchmarkFig19b(b *testing.B) { benchFigure(b, "fig19b") }
func BenchmarkFig20(b *testing.B)  { benchFigure(b, "fig20") }
func BenchmarkFig21(b *testing.B)  { benchFigure(b, "fig21") }

// Appendix A: RAID-6.
func BenchmarkFig22(b *testing.B)  { benchFigure(b, "fig22") }
func BenchmarkFig23(b *testing.B)  { benchFigure(b, "fig23") }
func BenchmarkFig24(b *testing.B)  { benchFigure(b, "fig24") }
func BenchmarkFig25(b *testing.B)  { benchFigure(b, "fig25") }
func BenchmarkFig26(b *testing.B)  { benchFigure(b, "fig26") }
func BenchmarkFig27a(b *testing.B) { benchFigure(b, "fig27a") }
func BenchmarkFig27b(b *testing.B) { benchFigure(b, "fig27b") }
func BenchmarkFig28(b *testing.B)  { benchFigure(b, "fig28") }
func BenchmarkFig29(b *testing.B)  { benchFigure(b, "fig29") }
func BenchmarkFig30(b *testing.B)  { benchFigure(b, "fig30") }

// Ablations on dRAID's design choices (DESIGN.md).
func BenchmarkAblationPipeline(b *testing.B)   { benchFigure(b, "ablation-pipeline") }
func BenchmarkAblationHostParity(b *testing.B) { benchFigure(b, "ablation-hostparity") }
func BenchmarkAblationBarrier(b *testing.B)    { benchFigure(b, "ablation-barrier") }
func BenchmarkAblationReducer(b *testing.B)    { benchFigure(b, "ablation-reducer") }
func BenchmarkAblationColocate(b *testing.B)   { benchFigure(b, "ablation-colocate") }
