// Package draid is a from-scratch reproduction of "Disaggregated RAID
// Storage in Modern Datacenters" (ASPLOS 2023): a parity-RAID system over
// disaggregated storage whose host is only a coordinator — partial-parity
// generation, parity reduction, and data reconstruction run on the storage
// servers and flow peer-to-peer, keeping host NIC overhead at ~1× for both
// partial-stripe writes and degraded reads.
//
// The physical substrate (RDMA fabric, NVMe drives, controller cores) is a
// deterministic discrete-event simulation calibrated to the paper's testbed;
// the protocol, algorithms, and parity math are real. See DESIGN.md for the
// substitution rationale and EXPERIMENTS.md for paper-vs-measured results.
//
// Quick start:
//
//	arr, _ := draid.New(draid.Config{Drives: 8})
//	_ = arr.WriteSync(0, payload)
//	got, _ := arr.ReadSync(0, int64(len(payload)))
//	arr.FailDrive(2)                    // degrade the array
//	still, _ := arr.ReadSync(0, int64(len(payload))) // reconstructed reads
package draid

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"draid/internal/backend"
	"draid/internal/blockdev"
	"draid/internal/cluster"
	"draid/internal/core"
	"draid/internal/fio"
	"draid/internal/parity"
	"draid/internal/placement"
	"draid/internal/raid"
	"draid/internal/recon"
	"draid/internal/repair"
	"draid/internal/sim"
	"draid/internal/simnet"
	"draid/internal/ssd"
	"draid/internal/trace"
)

// Level selects the RAID level.
type Level = raid.Level

// Supported levels.
const (
	Raid5 = raid.Raid5
	Raid6 = raid.Raid6
)

// Errors returned by array operations. They chain — ErrDoubleFault wraps
// ErrDegraded wraps ErrIO — so errors.Is matches at any specificity:
//
//	if errors.Is(err, draid.ErrDegraded) { ... }  // any degraded-mode failure
var (
	// ErrOutOfRange reports an access beyond the device size.
	ErrOutOfRange = blockdev.ErrOutOfRange
	// ErrIO is the root of all I/O failures.
	ErrIO = blockdev.ErrIO
	// ErrTimeout reports an operation that exceeded its deadline.
	ErrTimeout = blockdev.ErrTimeout
	// ErrDegraded reports a degraded-mode operation that could not complete
	// (for example, a participant lost mid-reconstruction).
	ErrDegraded = blockdev.ErrDegraded
	// ErrDoubleFault reports failures exceeding the parity budget: the
	// addressed data is unrecoverable until rebuild or repair.
	ErrDoubleFault = blockdev.ErrDoubleFault
	// ErrMediaError reports data lost to drive media faults: a latent sector
	// error (URE) or detected corruption that parity reconstruction could not
	// satisfy. Reads overlapping a recorded lost region also match it.
	ErrMediaError = blockdev.ErrMediaError
	// ErrUnsupported reports an operation the array's backend cannot perform —
	// for example, media-fault injection on file-backed realtime drives.
	ErrUnsupported = backend.ErrUnsupported
	// ErrNoCapacity reports a volume allocation that exceeds the drives'
	// remaining capacity (Pool.OpenVolume past the allocation cursor).
	ErrNoCapacity = cluster.ErrNoCapacity
	// ErrFenced reports I/O refused because the issuing controller no longer
	// owns the volume: its lease expired or a replacement seized the epoch.
	ErrFenced = blockdev.ErrFenced
	// ErrStaleEpoch reports a command rejected by a storage server because it
	// carried a superseded host epoch — proof a takeover happened while the
	// issuing controller was partitioned. Wraps ErrFenced.
	ErrStaleEpoch = blockdev.ErrStaleEpoch
)

// BackendKind selects the substrate an array runs on.
type BackendKind string

// Supported backends.
const (
	// BackendSim is the deterministic discrete-event simulation (the
	// default): virtual time, calibrated NIC/drive/CPU models, and
	// byte-identical replays for a given seed.
	BackendSim BackendKind = "sim"
	// BackendRealtime runs the identical protocol stack on goroutine event
	// loops against wall-clock timers, with in-process channel or loopback
	// TCP transports and memory- or file-backed drives. Timing-model
	// features (NIC rates, Observe tracing, controller offload, the
	// bandwidth-aware reducer) are unavailable.
	BackendRealtime BackendKind = "realtime"
)

// ParseBackend maps a flag-style string ("sim", "realtime"; "" means sim) to
// a BackendKind.
func ParseBackend(s string) (BackendKind, error) {
	switch s {
	case "", "sim":
		return BackendSim, nil
	case "realtime":
		return BackendRealtime, nil
	}
	return "", fmt.Errorf("draid: unknown backend %q", s)
}

// RealtimeOptions tunes the realtime backend (ignored on BackendSim).
type RealtimeOptions struct {
	// TCP carries capsules over loopback TCP sockets (with receiver-side
	// command checksum verification) instead of in-process channels.
	TCP bool
	// Dir backs each drive with a sparse file under this directory instead
	// of memory. File-backed drives do not support media-fault injection:
	// the injection APIs return ErrUnsupported. Ignored with SizeOnly.
	Dir string
}

// ReducerPolicy selects degraded-read reducer placement (§6.2).
type ReducerPolicy int

// Reducer placement policies.
const (
	// ReducerRandom spreads reductions uniformly over eligible members
	// (the default).
	ReducerRandom ReducerPolicy = iota
	// ReducerFixed always picks the first eligible member (the static
	// placement the paper compares against).
	ReducerFixed
	// ReducerBWAware picks the member with the most spare NIC bandwidth
	// (§6.2 bandwidth-aware placement).
	ReducerBWAware
)

// String names the policy ("random", "fixed", "bwaware").
func (p ReducerPolicy) String() string {
	switch p {
	case ReducerRandom:
		return "random"
	case ReducerFixed:
		return "fixed"
	case ReducerBWAware:
		return "bwaware"
	}
	return fmt.Sprintf("ReducerPolicy(%d)", int(p))
}

// ParseReducerPolicy maps a flag-style string ("random", "fixed", "bwaware";
// "" means random) to a policy. It is the only place strings enter: the
// Config field itself is typed.
func ParseReducerPolicy(s string) (ReducerPolicy, error) {
	switch s {
	case "", "random":
		return ReducerRandom, nil
	case "fixed":
		return ReducerFixed, nil
	case "bwaware":
		return ReducerBWAware, nil
	}
	return 0, fmt.Errorf("draid: unknown reducer policy %q", s)
}

// HedgePolicy selects when a read hedges its stragglers (see HedgeConfig).
type HedgePolicy = core.HedgePolicy

// Hedging policies.
const (
	// HedgeOff never hedges (the default; the read path is byte-identical
	// to an array built without hedging support).
	HedgeOff = core.HedgeOff
	// HedgeFixedDelay hedges a straggler outstanding longer than
	// HedgeConfig.Delay.
	HedgeFixedDelay = core.HedgeFixedDelay
	// HedgeAdaptiveP95 hedges a straggler outstanding longer than
	// Multiplier × the median of per-member p95 completion latencies.
	HedgeAdaptiveP95 = core.HedgeAdaptiveP95
	// HedgeEagerParity issues the parity read up front with the data reads
	// and solves with whichever k of the n members complete first.
	HedgeEagerParity = core.HedgeEagerParity
)

// ParseHedgePolicy maps a flag-style string ("off", "fixed-delay",
// "adaptive-p95", "eager-parity"; "" means off) to a policy.
func ParseHedgePolicy(s string) (HedgePolicy, error) {
	switch s {
	case "", "off":
		return HedgeOff, nil
	case "fixed", "fixed-delay":
		return HedgeFixedDelay, nil
	case "adaptive", "adaptive-p95":
		return HedgeAdaptiveP95, nil
	case "eager", "eager-parity":
		return HedgeEagerParity, nil
	}
	return 0, fmt.Errorf("draid: unknown hedge policy %q", s)
}

// HedgeConfig tunes hedged reads: when an otherwise-complete stripe read is
// stalled by exactly one slow member, the host reads the stripe's parity
// chunk, reuses the completions it already holds, and XOR-solves the
// straggler's range — any k of the n members answer the read. The abandoned
// straggler feeds the failure detector's grey-failure lattice (see
// HealthConfig.DegradeAfter), so persistent laggards are eventually evicted
// rather than hedged forever.
type HedgeConfig struct {
	// Policy selects the trigger (default HedgeOff). Use ParseHedgePolicy
	// at flag boundaries.
	Policy HedgePolicy
	// Delay is the HedgeFixedDelay trigger (default 500µs).
	Delay time.Duration
	// Multiplier scales the HedgeAdaptiveP95 threshold (default 3).
	Multiplier float64
	// MinSamples is the per-member warm-up before adaptive hedging trusts
	// its latency quantiles (default 32).
	MinSamples int
}

// SlowKind classifies slow-drive injection profiles (grey failures: the
// drive answers correctly, just slowly).
type SlowKind = backend.SlowKind

// Slow-drive profile kinds.
const (
	// SlowNone clears a previously installed profile.
	SlowNone = backend.SlowNone
	// SlowConstant inflates service time by a constant Factor.
	SlowConstant = backend.SlowConstant
	// SlowFading ramps inflation linearly from 1× to Factor over Ramp —
	// the classic fading drive.
	SlowFading = backend.SlowFading
	// SlowStall freezes completions for Stall out of every Period — an
	// intermittent brown-out (firmware GC, link flaps).
	SlowStall = backend.SlowStall
)

// SlowProfile describes deterministic per-drive latency inflation, installed
// with Inject().SlowDrive. Randomized jitter is seeded from Config.Seed, so
// two same-seed runs inject identical slowness.
type SlowProfile struct {
	Kind SlowKind
	// Factor is the steady-state service-time multiplier (SlowConstant,
	// SlowFading).
	Factor float64
	// Ramp is the SlowFading ramp length from healthy to Factor.
	Ramp time.Duration
	// Period and Stall define the SlowStall duty cycle: completions freeze
	// for Stall out of every Period.
	Period, Stall time.Duration
	// Base overrides the synthetic per-op latency the realtime backend
	// inflates (its memory drives complete instantly otherwise). Default
	// 100µs. Ignored by the simulation, which inflates its calibrated
	// drive model instead.
	Base time.Duration
	// Jitter scales the inflation by ±Jitter uniformly at random (seeded).
	Jitter float64
}

// ParseSlowProfile maps a flag-style string to a profile:
//
//	"none" or ""        no slowness
//	"const:F"           constant F× inflation           (const:10)
//	"fade:F:RAMP"       linear ramp to F× over RAMP     (fade:10:50ms)
//	"stall:STALL/PERIOD" freeze STALL out of each PERIOD (stall:2ms/20ms)
func ParseSlowProfile(s string) (SlowProfile, error) {
	if s == "" || s == "none" {
		return SlowProfile{}, nil
	}
	bad := func() (SlowProfile, error) {
		return SlowProfile{}, fmt.Errorf("draid: malformed slow profile %q", s)
	}
	kind, rest, _ := strings.Cut(s, ":")
	switch kind {
	case "const":
		f, err := strconv.ParseFloat(rest, 64)
		if err != nil || f <= 0 {
			return bad()
		}
		return SlowProfile{Kind: SlowConstant, Factor: f}, nil
	case "fade":
		fs, rs, ok := strings.Cut(rest, ":")
		if !ok {
			return bad()
		}
		f, err := strconv.ParseFloat(fs, 64)
		if err != nil || f <= 0 {
			return bad()
		}
		ramp, err := time.ParseDuration(rs)
		if err != nil || ramp <= 0 {
			return bad()
		}
		return SlowProfile{Kind: SlowFading, Factor: f, Ramp: ramp}, nil
	case "stall":
		ss, ps, ok := strings.Cut(rest, "/")
		if !ok {
			return bad()
		}
		stall, err := time.ParseDuration(ss)
		if err != nil || stall <= 0 {
			return bad()
		}
		period, err := time.ParseDuration(ps)
		if err != nil || period < stall {
			return bad()
		}
		return SlowProfile{Kind: SlowStall, Stall: stall, Period: period}, nil
	}
	return bad()
}

// toCore converts the public hedge config to the core representation.
func (c HedgeConfig) toCore() core.HedgeConfig {
	return core.HedgeConfig{
		Policy:     c.Policy,
		Delay:      sim.Duration(c.Delay),
		Multiplier: c.Multiplier,
		MinSamples: c.MinSamples,
	}
}

// toBackend converts the public profile to the backend representation.
func (p SlowProfile) toBackend() backend.SlowProfile {
	return backend.SlowProfile{
		Kind: p.Kind, Factor: p.Factor,
		Ramp: sim.Duration(p.Ramp), Period: sim.Duration(p.Period),
		Stall: sim.Duration(p.Stall), Base: sim.Duration(p.Base),
		Jitter: p.Jitter,
	}
}

// Tracer is the structured virtual-time trace collector. A nil *Tracer is
// the disabled tracer: every method is safe to call and does nothing, and
// WriteChrome/WriteFlame emit valid empty documents.
type Tracer = trace.Collector

// Observe configures the tracing and metrics subsystem (see Array.Trace).
type Observe struct {
	// Trace enables collection: hierarchical spans from the controllers,
	// NICs, and drives, plus periodic gauge samples (NIC utilization, drive
	// queue depth, controller-core busy fraction). Collection runs in
	// virtual time, so two same-seed runs emit byte-identical traces.
	Trace bool
	// SampleEvery sets the gauge sampling period in virtual time
	// (default 50µs).
	SampleEvery time.Duration
}

// HealthConfig tunes automatic failure detection (internal/repair). With
// Detect set, the host controller feeds per-member evidence — op timeouts,
// error completions, missed heartbeats — into a healthy → suspect → failed
// state machine, and confirmed failures trigger rebuild onto a hot spare
// (when Config.Spares provides one) with no SetFailed call from outside.
type HealthConfig struct {
	// Detect enables the failure detector and heartbeat probing.
	Detect bool
	// FailAfter is how many unconfirmed strikes escalate suspect → failed
	// (default 3). Confirmed evidence (node observably down, drive error)
	// escalates immediately.
	FailAfter int
	// HeartbeatEvery is the probe period (default 10ms when Detect is set).
	HeartbeatEvery time.Duration
	// HeartbeatTimeout is the per-probe deadline (default HeartbeatEvery/2).
	HeartbeatTimeout time.Duration
	// Grace is the quiet window after which accumulated strikes decay
	// (default 4×HeartbeatEvery).
	Grace time.Duration
	// DegradeAfter is how many slow strikes (hedge losses, see HedgeConfig)
	// mark a healthy member degraded (default 8).
	DegradeAfter int
	// EvictAfter is how many slow strikes evict a persistently slow member:
	// suspect at EvictAfter/2, failed — triggering spare rebuild — at
	// EvictAfter (default 64; negative disables slow-strike eviction).
	EvictAfter int
}

// MemberState re-exports the detector's per-member state (healthy, degraded,
// suspect, failed) for status surfaces.
type MemberState = repair.MemberState

// Detection states: the health lattice healthy → degraded → suspect →
// failed. Degraded members answer correctly but slowly (grey failure).
const (
	Healthy  = repair.Healthy
	Degraded = repair.Degraded
	Suspect  = repair.Suspect
	Failed   = repair.Failed
)

// RebuildStatus re-exports the rebuild manager's progress snapshot.
type RebuildStatus = repair.RebuildStatus

// ScrubStatus re-exports the background scrubber's progress snapshot.
type ScrubStatus = repair.ScrubStatus

// LostRegion is one virtual byte range sacrificed to a media double fault
// (for example, a survivor URE during a RAID-5 rebuild). See
// Array.LostRegions.
type LostRegion = core.LostRegion

// RecoveryEvent is one entry of the supervisor's recovery log.
type RecoveryEvent = repair.Event

// Config describes a dRAID array and its testbed.
type Config struct {
	// Backend selects the substrate (default BackendSim). BackendRealtime
	// runs the same protocol on goroutines, channels/TCP, and real media;
	// see RealtimeOptions for its knobs and BackendKind for what it cannot
	// model.
	Backend BackendKind
	// Realtime tunes the realtime backend (ignored on BackendSim).
	Realtime RealtimeOptions
	// Level is the RAID level (default Raid5).
	Level Level
	// Drives is the stripe width: one remote target per member drive
	// (default 8, the paper's default). With Declustered it remains the
	// stripe width while the cluster holds ClusterDrives targets.
	Drives int
	// Declustered spreads the stripes over ClusterDrives > Drives physical
	// drives with a seeded parity-declustered placement (dRAID-style):
	// every drive holds chunks of ~Stripes×Drives/ClusterDrives stripes,
	// each row keeps distributed spare slots, and a failed drive is rebuilt
	// many-to-many into those slots — so rebuild time shrinks as the
	// cluster grows, and drives can be added (AddDrive) and removed
	// (RemoveDrive) online. Off (the default) keeps the classic fixed
	// layout, byte-identical to previous releases.
	Declustered bool
	// ClusterDrives is the physical drive count a declustered array spreads
	// over; must exceed Drives so every row keeps at least one spare slot.
	// Requires Declustered.
	ClusterDrives int
	// ChunkSize is the stripe chunk size (default 512 KB).
	ChunkSize int64
	// DriveCapacity overrides the per-drive capacity (default 1.6 TB, the
	// paper's drives; use something small for data-integrity experiments).
	DriveCapacity int64
	// HostNICGbps and TargetNICGbps set line rates (default 100).
	// TargetNICGbpsList overrides per-target rates (heterogeneous setups).
	HostNICGbps       float64
	TargetNICGbps     float64
	TargetNICGbpsList []float64
	// ReducerPolicy selects degraded-read reducer placement (default
	// ReducerRandom). Use ParseReducerPolicy at flag boundaries.
	ReducerPolicy ReducerPolicy
	// Hedge tunes hedged reads against slow (grey-failed) members. The
	// zero value disables hedging and leaves the read path byte-identical.
	Hedge HedgeConfig
	// DrivesPerServer co-locates several member drives on one physical
	// storage server, sharing its NIC and controller core (§5.5 resource
	// sharing). Default 1.
	DrivesPerServer int
	// SizeOnly runs the data plane without materializing payload bytes —
	// benchmark mode. Data-bearing APIs then return zero-filled buffers.
	SizeOnly bool
	// OffloadController places the dRAID controller on a storage-class
	// server (§7): the local node becomes a thin client one NVMe-oF hop
	// away. Client NIC traffic is 1x in every state; latency gains one hop.
	OffloadController bool
	// Seed drives all randomness (default 1).
	Seed int64
	// Observe configures the tracing and metrics subsystem.
	Observe Observe
	// Spares provisions this many hot-spare storage servers (own NIC, core,
	// drive) beyond the array width. Confirmed member failures rebuild onto
	// spares automatically.
	Spares int
	// Health configures automatic failure detection.
	Health HealthConfig
	// RebuildRateMBps throttles hot-spare rebuild to this many MB/s of
	// reconstructed data (the Figure 17 rebuild-vs-foreground knob).
	// 0 means unthrottled.
	RebuildRateMBps float64
	// Integrity enables end-to-end data integrity: storage servers keep a
	// CRC32C per 4 KB block (a T10-DIF stand-in, computed by the drive
	// datapath so it adds no virtual-time cost) and verify every read.
	// Checksum mismatches and media errors surface to the host as per-chunk
	// erasures, satisfied via parity reconstruction and then repaired in
	// place. Incompatible with SizeOnly (checksums need stored bytes).
	// Implied by ScrubInterval > 0.
	Integrity bool
	// ScrubInterval enables the background scrubber: each interval of virtual
	// time a pass walks every stripe, verifying checksum and parity coherence
	// and repairing latent errors before a second fault makes them fatal.
	// Implies Integrity. Passes run on background timers, so Run still
	// returns when foreground I/O drains.
	ScrubInterval time.Duration
	// ScrubRateMBps throttles scrub passes to this many MB/s of verified
	// stripe data (all chunks), so scrubbing trickles along under foreground
	// I/O. 0 means unthrottled.
	ScrubRateMBps float64
	// WriteBack enables host-side write-back staging: sub-stripe writes land
	// in a bounded, intent-logged staging buffer, are acknowledged
	// immediately, coalesced by stripe, and destaged as full-stripe writes —
	// cutting small-write drive-byte amplification from ~2x toward
	// (k+parity)/k and closing the write hole by construction for staged
	// writes. Off (the default) leaves the write path byte-identical.
	// Acknowledged staged writes survive FailoverHost via intent-log replay.
	WriteBack bool
	// StageMB bounds the staging buffer in MiB (default 16). Requires
	// WriteBack.
	StageMB int
	// CacheMB sizes the host's clean-read cache in MiB (default 0: no clean
	// cache; reads of staged-but-not-destaged data still hit host memory).
	// Requires WriteBack.
	CacheMB int
	// DestageIntervalMs is the idle-destage tick in milliseconds (default
	// 2): staged stripes with no new writes for a full tick are flushed.
	// Requires WriteBack.
	DestageIntervalMs int
	// EpochFencing enables membership epochs: the host controller holds a
	// monotone epoch granted by the cluster at volume-open and takeover time,
	// stamps it into every protocol capsule, and the storage servers reject
	// commands from superseded epochs with a typed status — so a partitioned
	// predecessor can never corrupt state after a replacement takes over
	// (SeizeHost), no matter how long it keeps retrying. A host that observes
	// a stale-epoch rejection stands down: further I/O fails with
	// ErrStaleEpoch. Off (the default) leaves the wire format and every code
	// path byte-identical to previous releases.
	EpochFencing bool
	// HostLease arms the controller's membership lease: the host re-validates
	// its epoch against the cluster every HostLease/2 and proactively fences
	// itself — parking foreground I/O and destage with ErrFenced — once a
	// full lease elapses without a successful renewal, bounding how long a
	// partitioned host keeps issuing doomed writes. 0 (the default) disables
	// the watchdog. Requires EpochFencing.
	HostLease time.Duration
	// MaxRetries bounds §5.4 per-op retries before an I/O fails with
	// ErrTimeout (default 1). RetryBackoff spaces successive attempts
	// (default 0: immediate).
	MaxRetries   int
	RetryBackoff time.Duration
	// OpDeadline bounds each stripe operation (§5.4); ops stalled past it
	// retry and feed the failure detector. Default 1s. Tighten it to bound
	// worst-case I/O latency across an undetected member failure.
	OpDeadline time.Duration
}

// Array is a dRAID virtual block device plus its simulated testbed. All
// methods must be called from one goroutine; *Sync methods advance virtual
// time until the operation completes.
type Array struct {
	cl   *cluster.Cluster
	host *core.HostController
	// dev is the I/O entry point: the controller itself, or the thin
	// client when the controller is offloaded (§7).
	dev blockdev.Device
	// clientNode is the traffic-accounting vantage point.
	clientNode *simnet.Node
	// hostCfg is kept so FailoverHost can build an identical replacement.
	hostCfg core.Config
	// sup is the fault-supervision stack (nil unless Spares, Health.Detect,
	// or ScrubInterval was configured).
	sup *repair.Supervisor
	// adhocScrub serves ScrubNow on arrays without a supervisor.
	adhocScrub *repair.Scrubber
	// scrubRate paces ad-hoc scrub passes; seed feeds per-drive fault
	// injection (SetLatentErrorRate).
	scrubRate float64
	seed      int64
	// vol is non-nil for arrays opened through a Pool: traffic accounting is
	// then scoped to the volume's share of the host NIC.
	vol *cluster.Volume
	// realtime marks arrays on BackendRealtime: host state is then confined
	// to the host event loop and accessed via call().
	realtime bool
	// rebalDone/rebalErr record the outcome of the last AddDrive/RemoveDrive
	// background migration, read by WaitRebalance.
	rebalDone bool
	rebalErr  error
}

// withDefaults returns cfg with zero fields filled in.
func (cfg Config) withDefaults() Config {
	if cfg.Backend == "" {
		cfg.Backend = BackendSim
	}
	if cfg.Level == 0 {
		cfg.Level = Raid5
	}
	if cfg.Drives == 0 {
		cfg.Drives = 8
	}
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = 512 << 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.ScrubInterval > 0 {
		cfg.Integrity = true
	}
	return cfg
}

// Validate reports why the configuration cannot be assembled, after applying
// the same defaulting New applies. A nil return means New will accept it.
func (cfg Config) Validate() error {
	return cfg.withDefaults().validate()
}

// validate checks an already-defaulted config.
func (cfg Config) validate() error {
	if cfg.Integrity && cfg.SizeOnly {
		return fmt.Errorf("draid: Integrity requires stored data (incompatible with SizeOnly)")
	}
	geo := raid.Geometry{Level: cfg.Level, Width: cfg.Drives, ChunkSize: cfg.ChunkSize}
	if err := geo.Validate(); err != nil {
		return err
	}
	switch cfg.ReducerPolicy {
	case ReducerRandom, ReducerFixed, ReducerBWAware:
	default:
		return fmt.Errorf("draid: unknown reducer policy %v", cfg.ReducerPolicy)
	}
	switch cfg.Hedge.Policy {
	case HedgeOff, HedgeFixedDelay, HedgeAdaptiveP95, HedgeEagerParity:
	default:
		return fmt.Errorf("draid: unknown hedge policy %v", cfg.Hedge.Policy)
	}
	if cfg.ClusterDrives != 0 && !cfg.Declustered {
		return fmt.Errorf("draid: ClusterDrives requires Declustered")
	}
	if cfg.Declustered && cfg.ClusterDrives <= cfg.Drives {
		return fmt.Errorf("draid: declustered placement needs ClusterDrives (%d) > Drives (%d) for distributed spare slots",
			cfg.ClusterDrives, cfg.Drives)
	}
	if !cfg.WriteBack {
		if cfg.StageMB != 0 || cfg.CacheMB != 0 || cfg.DestageIntervalMs != 0 {
			return fmt.Errorf("draid: StageMB/CacheMB/DestageIntervalMs require WriteBack")
		}
	}
	if cfg.StageMB < 0 || cfg.CacheMB < 0 || cfg.DestageIntervalMs < 0 {
		return fmt.Errorf("draid: negative write-back sizing")
	}
	if cfg.HostLease < 0 {
		return fmt.Errorf("draid: negative HostLease")
	}
	if cfg.HostLease > 0 && !cfg.EpochFencing {
		return fmt.Errorf("draid: HostLease requires EpochFencing (renewal validates the epoch)")
	}
	switch cfg.Backend {
	case BackendSim:
	case BackendRealtime:
		// The realtime backend has no timing models to observe or steer.
		if cfg.OffloadController {
			return fmt.Errorf("draid: OffloadController on the realtime backend: %w", ErrUnsupported)
		}
		if cfg.Observe.Trace {
			return fmt.Errorf("draid: Observe.Trace on the realtime backend: %w", ErrUnsupported)
		}
		if cfg.ReducerPolicy == ReducerBWAware {
			return fmt.Errorf("draid: ReducerBWAware on the realtime backend: %w", ErrUnsupported)
		}
		if cfg.DrivesPerServer > 1 {
			return fmt.Errorf("draid: DrivesPerServer on the realtime backend: %w", ErrUnsupported)
		}
	default:
		return fmt.Errorf("draid: unknown backend %q", cfg.Backend)
	}
	return nil
}

// New assembles the testbed and attaches the dRAID host controller.
func New(cfg Config) (*Array, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Backend == BackendRealtime {
		return newRealtime(cfg)
	}
	geo := raid.Geometry{Level: cfg.Level, Width: cfg.Drives, ChunkSize: cfg.ChunkSize}
	spec := cluster.DefaultSpec()
	spec.Targets = cfg.clusterTargets()
	spec.Spares = cfg.Spares
	spec.Seed = cfg.Seed
	spec.Elide = cfg.SizeOnly
	spec.Integrity = cfg.Integrity
	if cfg.HostNICGbps != 0 {
		spec.HostGbps = cfg.HostNICGbps
	}
	if cfg.TargetNICGbps != 0 {
		spec.TargetGbps = cfg.TargetNICGbps
	}
	spec.TargetGbpsList = cfg.TargetNICGbpsList
	spec.BdevsPerServer = cfg.DrivesPerServer
	spec.Observe = cfg.Observe.Trace
	spec.SampleEvery = sim.Duration(cfg.Observe.SampleEvery)
	if cfg.DriveCapacity != 0 {
		drv := ssd.DefaultSpec()
		drv.Capacity = cfg.DriveCapacity
		drv.StoreData = !cfg.SizeOnly
		spec.Drive = &drv
	}
	cl := cluster.New(spec)

	hostCfg := core.Config{
		Geometry:     geo,
		MaxRetries:   cfg.MaxRetries,
		RetryBackoff: sim.Duration(cfg.RetryBackoff),
		Deadline:     sim.Duration(cfg.OpDeadline),
		Hedge:        cfg.Hedge.toCore(),
		LayoutFor:    cfg.layoutFor(),
	}
	cfg.applyWriteBack(&hostCfg)
	switch cfg.ReducerPolicy {
	case ReducerRandom:
	case ReducerFixed:
		hostCfg.Selector = recon.FixedSelector{}
	case ReducerBWAware:
		tr := recon.NewBandwidthTracker(cl.Eng, targetNICs(cl), 2*sim.Millisecond)
		hostCfg.Selector = &recon.BWAwareSelector{Rng: cl.Eng.Rand(), Tracker: tr, Fanout: cfg.Drives - 2}
	default:
		return nil, fmt.Errorf("draid: unknown reducer policy %v", cfg.ReducerPolicy)
	}
	if cfg.EpochFencing {
		grantEpoch(cl, 0, &hostCfg, sim.Duration(cfg.HostLease))
	}
	host := cl.NewDRAID(hostCfg)
	arr := &Array{cl: cl, host: host, dev: host, clientNode: cl.HostNode, hostCfg: hostCfg,
		scrubRate: cfg.ScrubRateMBps, seed: cfg.Seed}
	arr.attachSupervisor(cfg)
	if cfg.OffloadController {
		clientNode := cl.Net.NewNode("client")
		gbps := cfg.HostNICGbps
		if gbps == 0 {
			gbps = 100
		}
		clientNode.AddNIC("nic0", gbps)
		arr.dev = core.NewOffload(cl.Eng, cl.Net, clientNode, host, cl.Costs)
		arr.clientNode = clientNode
	}
	return arr, nil
}

// newRealtime assembles an array on the realtime backend: node event loops,
// channel or TCP transport, memory- or file-backed drives.
func newRealtime(cfg Config) (*Array, error) {
	capacity := cfg.DriveCapacity
	if capacity == 0 {
		// The sim's 1.6 TB default is sparse virtual capacity; realtime
		// arrays move real bytes, so default to something rebuildable.
		capacity = 256 << 20
	}
	cl, err := cluster.NewRealtime(cluster.RealtimeSpec{
		Targets: cfg.clusterTargets(), Spares: cfg.Spares, Seed: cfg.Seed,
		DriveCapacity: capacity, SizeOnly: cfg.SizeOnly, Integrity: cfg.Integrity,
		Pipelined: true, TCP: cfg.Realtime.TCP, Dir: cfg.Realtime.Dir,
	})
	if err != nil {
		return nil, err
	}
	hostCfg := core.Config{
		Geometry:     raid.Geometry{Level: cfg.Level, Width: cfg.Drives, ChunkSize: cfg.ChunkSize},
		MaxRetries:   cfg.MaxRetries,
		RetryBackoff: sim.Duration(cfg.RetryBackoff),
		Deadline:     sim.Duration(cfg.OpDeadline),
		Hedge:        cfg.Hedge.toCore(),
		LayoutFor:    cfg.layoutFor(),
	}
	cfg.applyWriteBack(&hostCfg)
	if cfg.ReducerPolicy == ReducerFixed {
		hostCfg.Selector = recon.FixedSelector{}
	}
	if cfg.EpochFencing {
		grantEpoch(cl, 0, &hostCfg, sim.Duration(cfg.HostLease))
	}
	host := cl.NewDRAID(hostCfg)
	arr := &Array{cl: cl, host: host, dev: loopDev{rt: cl.Rt, dev: host},
		hostCfg: hostCfg, scrubRate: cfg.ScrubRateMBps, seed: cfg.Seed, realtime: true}
	arr.attachSupervisor(cfg)
	return arr, nil
}

// clusterTargets returns the physical target count the testbed needs: the
// stripe width normally, the whole declustered drive set otherwise.
func (cfg Config) clusterTargets() int {
	if cfg.Declustered {
		return cfg.ClusterDrives
	}
	return cfg.Drives
}

// layoutFor returns the declustered layout constructor for a host config,
// or nil to keep the default fixed layout (byte-identical placement).
func (cfg Config) layoutFor() func(base, extent int64) placement.Layout {
	if !cfg.Declustered {
		return nil
	}
	width, drives, chunk, seed := cfg.Drives, cfg.ClusterDrives, cfg.ChunkSize, cfg.Seed
	return func(base, extent int64) placement.Layout {
		l, err := placement.NewDeclustered(base, extent, chunk, width, drives, seed)
		if err != nil {
			// validate() enforced width ≥ 2, drives > width, extent ≥ chunk.
			panic(err.Error())
		}
		return l
	}
}

// grantEpoch takes the next host epoch for a volume from the cluster's
// membership registry and stamps it (plus the lease watchdog) onto a host
// config. The renewal closure re-validates against the registry, so a host
// superseded by a takeover cannot renew.
func grantEpoch(cl *cluster.Cluster, vol core.VolumeID, hc *core.Config, lease sim.Duration) {
	epoch := cl.GrantEpoch(vol)
	hc.Epoch = epoch
	hc.Lease = lease
	hc.RenewLease = nil
	if lease > 0 {
		hc.RenewLease = func() bool { return cl.CurrentEpoch(vol) == epoch }
	}
}

// applyWriteBack translates the public write-back knobs onto a host config.
func (cfg Config) applyWriteBack(hc *core.Config) {
	if !cfg.WriteBack {
		return
	}
	hc.WriteBack = true
	hc.StageBytes = int64(cfg.StageMB) << 20
	hc.CacheBytes = int64(cfg.CacheMB) << 20
	hc.DestageInterval = sim.Duration(cfg.DestageIntervalMs) * sim.Millisecond
}

// attachSupervisor builds the fault-supervision stack when the config asks
// for one. Shared by both backends.
func (a *Array) attachSupervisor(cfg Config) {
	if cfg.Spares == 0 && !cfg.Health.Detect && cfg.ScrubInterval == 0 {
		return
	}
	det := repair.DetectorConfig{
		FailAfter:        cfg.Health.FailAfter,
		HeartbeatTimeout: sim.Duration(cfg.Health.HeartbeatTimeout),
		Grace:            sim.Duration(cfg.Health.Grace),
		DegradeAfter:     cfg.Health.DegradeAfter,
		EvictAfter:       cfg.Health.EvictAfter,
	}
	if cfg.Health.Detect {
		det.HeartbeatEvery = sim.Duration(cfg.Health.HeartbeatEvery)
		if det.HeartbeatEvery <= 0 {
			det.HeartbeatEvery = 10 * sim.Millisecond
		}
	}
	a.sup = repair.NewSupervisor(a.cl.Rt, a.host, repair.Config{
		Detector: det,
		Rebuild:  repair.RebuilderConfig{RateMBps: cfg.RebuildRateMBps},
		Scrub: repair.ScrubberConfig{
			Interval: sim.Duration(cfg.ScrubInterval),
			RateMBps: cfg.ScrubRateMBps,
		},
		Pool: a.cl.Spares,
	}, a.cl.Tracer)
	if cfg.Health.Detect || cfg.ScrubInterval > 0 {
		a.sup.Start()
	}
}

// loopDev marshals device entry points onto the host's event loop — the
// realtime equivalent of issuing I/O from the simulation's single thread.
type loopDev struct {
	rt  backend.Runner
	dev blockdev.Device
}

func (d loopDev) Size() int64 { return d.dev.Size() }

func (d loopDev) Read(off, n int64, cb func(parity.Buffer, error)) {
	d.rt.Defer(func() { d.dev.Read(off, n, cb) })
}

func (d loopDev) Write(off int64, b parity.Buffer, cb func(error)) {
	d.rt.Defer(func() { d.dev.Write(off, b, cb) })
}

// call runs fn with safe access to host-confined state: inline on the
// simulation, marshalled onto the host loop on the realtime backend.
func (a *Array) call(fn func()) { a.cl.Rt.Call(fn) }

// Size returns the virtual device capacity in bytes.
func (a *Array) Size() int64 { return a.host.Size() }

// Now returns the current backend time: virtual on the simulation, elapsed
// wall time on the realtime backend.
func (a *Array) Now() time.Duration { return time.Duration(a.cl.Rt.Now()) }

// Run advances time until all outstanding work completes: on the simulation
// it drains the event queue; on the realtime backend it blocks until
// in-flight protocol work quiesces.
func (a *Array) Run() { a.cl.Rt.Run() }

// RunFor advances time by d (sleeping, on the realtime backend).
func (a *Array) RunFor(d time.Duration) { a.cl.Rt.RunFor(sim.Duration(d)) }

// Close releases backend resources: realtime event loops, transport
// listeners, and file-backed media. On the simulation it is a no-op. The
// array is unusable afterwards.
func (a *Array) Close() error { return a.cl.Close() }

// Write issues an asynchronous write; cb runs when the stripe operations
// complete. Call Run (or a *Sync method) to advance time.
func (a *Array) Write(off int64, data []byte, cb func(error)) {
	a.dev.Write(off, parity.FromBytes(data), cb)
}

// Read issues an asynchronous read.
func (a *Array) Read(off, n int64, cb func([]byte, error)) {
	a.dev.Read(off, n, func(b parity.Buffer, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		if b.Elided() {
			cb(make([]byte, b.Len()), nil)
			return
		}
		cb(b.Data(), err)
	})
}

// WriteContext writes and advances time until completion, honouring the
// context. A context deadline bounds the operation on top of the per-op
// OpDeadline machinery: on the simulation the remaining budget is spent as
// virtual time; on the realtime backend cancellation takes effect
// immediately. When the context expires the operation is abandoned (its
// outcome is unreported, like an NVMe command whose submitter gave up) and
// the error wraps context.DeadlineExceeded or context.Canceled.
func (a *Array) WriteContext(ctx context.Context, off int64, data []byte) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("draid: write: %w", err)
	}
	var err error
	done := false
	ch := make(chan struct{})
	a.Write(off, data, func(e error) { err, done = e, true; close(ch) })
	if werr := a.await(ctx, ch, &done); werr != nil {
		return fmt.Errorf("draid: write: %w", werr)
	}
	if !done {
		return fmt.Errorf("draid: write did not complete")
	}
	return err
}

// ReadContext reads and advances time until completion, honouring the
// context exactly as WriteContext does.
func (a *Array) ReadContext(ctx context.Context, off, n int64) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("draid: read: %w", err)
	}
	var out []byte
	var err error
	done := false
	ch := make(chan struct{})
	a.Read(off, n, func(b []byte, e error) { out, err, done = b, e, true; close(ch) })
	if rerr := a.await(ctx, ch, &done); rerr != nil {
		return nil, fmt.Errorf("draid: read: %w", rerr)
	}
	if !done {
		return nil, fmt.Errorf("draid: read did not complete")
	}
	return out, err
}

// await blocks until the issued operation completes or ctx gives up.
func (a *Array) await(ctx context.Context, ch chan struct{}, done *bool) error {
	if !a.realtime {
		dl, hasDL := ctx.Deadline()
		if !hasDL {
			// No deadline: drain the event queue as plain Run does. A
			// cancellation-only context cannot interrupt the deterministic
			// engine mid-run; it was checked at issue time.
			a.cl.Rt.Run()
			return nil
		}
		budget := time.Until(dl)
		if budget <= 0 {
			return context.DeadlineExceeded
		}
		// Spend the wall-clock budget as virtual time, so the op deadline
		// and retry machinery run under it.
		a.cl.Rt.RunUntil(a.cl.Rt.Now() + sim.Time(budget))
		if !*done {
			return context.DeadlineExceeded
		}
		return nil
	}
	if _, hasDL := ctx.Deadline(); !hasDL && ctx.Done() == nil {
		// Background context: wait for quiescence like the simulation, so a
		// dropped completion (crashed controller) surfaces as "did not
		// complete" rather than a hang.
		a.cl.Rt.Run()
		return nil
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WriteSync writes and advances time until completion.
func (a *Array) WriteSync(off int64, data []byte) error {
	return a.WriteContext(context.Background(), off, data)
}

// ReadSync reads and advances time until completion.
func (a *Array) ReadSync(off, n int64) ([]byte, error) {
	return a.ReadContext(context.Background(), off, n)
}

// Trace returns the array's trace collector, or nil when Config.Observe was
// off. Export with WriteChrome (Perfetto-loadable trace_event JSON) or
// WriteFlame (plain-text summary); both are deterministic for a given seed.
func (a *Array) Trace() *Tracer { return a.cl.Tracer }

// ReadAt implements io.ReaderAt over ReadSync: reads ending past the device
// return the available bytes plus io.EOF, and reads starting past it return
// 0, io.EOF. Like every *Sync path, it advances virtual time.
func (a *Array) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("draid: negative offset %d: %w", off, ErrOutOfRange)
	}
	size := a.Size()
	if off >= size {
		return 0, io.EOF
	}
	n := int64(len(p))
	eof := false
	if off+n > size {
		n = size - off
		eof = true
	}
	b, err := a.ReadSync(off, n)
	if err != nil {
		return 0, err
	}
	copy(p, b)
	if eof {
		return int(n), io.EOF
	}
	return int(n), nil
}

// WriteAt implements io.WriterAt over WriteSync. Writes extending past the
// device fail whole with ErrOutOfRange (no partial write).
func (a *Array) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > a.Size() {
		return 0, fmt.Errorf("draid: write [%d,%d) of %d: %w",
			off, off+int64(len(p)), a.Size(), ErrOutOfRange)
	}
	if err := a.WriteSync(off, p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Array is usable anywhere a random-access file is.
var (
	_ io.ReaderAt = (*Array)(nil)
	_ io.WriterAt = (*Array)(nil)
)

// FailDrive takes member i offline (node and drive) and degrades the array.
// When a supervisor is active (Spares or Health.Detect configured) it is
// notified, so a hot-spare rebuild launches on the next Run.
func (a *Array) FailDrive(i int) {
	a.cl.FailTarget(i)
	a.call(func() {
		a.host.SetFailed(i, true)
		if a.sup != nil {
			a.sup.NotifyFailed(i)
		}
	})
}

// CrashDrive takes member i offline WITHOUT telling the controller — the
// paper's fail-stop scenario. The host must notice on its own: op timeouts
// and missed heartbeats feed the failure detector (Config.Health), which
// escalates the member to failed and, with a spare available, triggers
// rebuild. Compare FailDrive, the administrative path.
func (a *Array) CrashDrive(i int) {
	a.cl.FailTarget(i)
}

// RecoverDrive returns member i to service WITHOUT resynchronizing its
// contents; use RebuildDrive to restore redundancy first.
func (a *Array) RecoverDrive(i int) {
	a.cl.RecoverTarget(i)
	a.call(func() { a.host.SetFailed(i, false) })
}

// FailedDrives lists degraded members.
func (a *Array) FailedDrives() []int {
	var out []int
	a.call(func() { out = a.host.FailedMembers() })
	return out
}

// RebuildDrive reconstructs every stripe chunk of failed member i via the
// disaggregated reconstruction path and writes the images to the (replaced)
// drive, then returns the member to service. stripes bounds the work for
// experiments; pass 0 to rebuild the full device.
func (a *Array) RebuildDrive(i int, stripes int64) error {
	var decl bool
	a.call(func() { decl = a.host.Declustered() })
	if decl {
		return a.rebuildDeclustered(i, stripes)
	}
	if stripes <= 0 {
		// Derive the stripe count from the device size, so a volume sharing
		// its drives rebuilds only its own extent.
		stripes = a.host.Size() / a.host.Geometry().StripeDataSize()
	}
	// The replacement drive accepts writes while reads still avoid it.
	a.cl.RecoverTarget(i)
	// Rebuild in place through the frontier machinery: each stripe is
	// reconstructed and written under its stripe write lock, and foreground
	// I/O (including write-back destages) below the advancing frontier treats
	// the member as healthy again. Without the lock and frontier, a destage
	// racing the rebuild could encode staged data into parity of an
	// already-rebuilt stripe and strand it behind the stale replacement image.
	var dupErr error
	a.call(func() {
		if _, _, ok := a.host.Rebuilding(i); ok {
			dupErr = fmt.Errorf("draid: member %d already rebuilding", i)
			return
		}
		a.host.StartRebuild(i, a.host.MemberNode(i))
	})
	if dupErr != nil {
		return dupErr
	}
	var rebuildErr error
	for s := int64(0); s < stripes; s++ {
		s := s
		done := false
		a.call(func() {
			a.host.RebuildStripe(s, i, func(err error) {
				if err != nil {
					rebuildErr = fmt.Errorf("draid: rebuilding stripe %d: %w", s, err)
				}
				done = true
			})
		})
		a.cl.Rt.Run()
		if !done || rebuildErr != nil {
			if rebuildErr == nil {
				rebuildErr = fmt.Errorf("draid: rebuild of stripe %d stalled", s)
			}
			a.call(func() { a.host.AbortRebuild(i) })
			return rebuildErr
		}
	}
	a.call(func() { a.host.FinishRebuild(i) })
	return nil
}

// rebuildDeclustered is the many-to-many rebuild behind RebuildDrive on a
// declustered array: each chunk the layout places on drive i is
// reconstructed into an idle spare slot of its own row, spreading reads
// and writes over the whole cluster. The drive is not returned to service —
// its chunks now live elsewhere — and is retired in the layout once empty.
func (a *Array) rebuildDeclustered(drive int, stripes int64) error {
	var slots []placement.Slot
	a.call(func() { slots = a.host.PlacementSlots(drive) })
	partial := false
	if stripes > 0 && int64(len(slots)) > stripes {
		slots, partial = slots[:stripes], true
	}
	var rebuildErr error
	for _, sl := range slots {
		sl := sl
		done := false
		a.call(func() {
			a.host.RebuildSlot(sl.Stripe, drive, func(err error) {
				if err != nil {
					rebuildErr = fmt.Errorf("draid: rebuilding stripe %d: %w", sl.Stripe, err)
				}
				done = true
			})
		})
		a.cl.Rt.Run()
		if !done || rebuildErr != nil {
			if rebuildErr == nil {
				rebuildErr = fmt.Errorf("draid: rebuild of stripe %d stalled", sl.Stripe)
			}
			return rebuildErr
		}
	}
	if !partial {
		a.call(func() { a.host.RetireDrive(drive) })
	}
	return nil
}

// RebalanceStatus re-exports the rebalancer's progress snapshot.
type RebalanceStatus = repair.RebalanceStatus

// AddDrive grows a declustered array by one drive: it claims an idle hot
// spare endpoint (provisioned by Config.Spares), adds it to the layout,
// and starts a background rebalance migrating a fair share of existing
// chunks onto it, paced by Config.RebuildRateMBps alongside any rebuild.
// The new drive index returns immediately; WaitRebalance (or Run plus
// RebalanceStatus) observes convergence. Foreground I/O keeps serving
// throughout — every migration runs under its stripe's write lock.
func (a *Array) AddDrive() (int, error) {
	if a.sup == nil {
		return 0, fmt.Errorf("draid: AddDrive needs a supervisor (configure Spares): %w", ErrUnsupported)
	}
	var idx int
	var err error
	a.call(func() {
		node, ok := a.cl.Spares.Claim()
		if !ok {
			err = fmt.Errorf("draid: no spare endpoint left to add")
			return
		}
		a.rebalDone, a.rebalErr = false, nil
		idx, err = a.sup.AddDrive(node, func(e error) { a.rebalErr, a.rebalDone = e, true })
	})
	return idx, err
}

// RemoveDrive drains every chunk off drive i onto the remaining drives'
// spare slots and retires it from the layout — online shrink. Like
// AddDrive it returns immediately; WaitRebalance observes the drain.
func (a *Array) RemoveDrive(i int) error {
	if a.sup == nil {
		return fmt.Errorf("draid: RemoveDrive needs a supervisor (configure Spares): %w", ErrUnsupported)
	}
	var err error
	a.call(func() {
		if i < 0 || i >= a.host.Drives() {
			err = fmt.Errorf("draid: drive %d out of range", i)
			return
		}
		a.rebalDone, a.rebalErr = false, nil
		a.sup.RemoveDrive(i, func(e error) { a.rebalErr, a.rebalDone = e, true })
	})
	return err
}

// WaitRebalance advances time until the rebalance or drain started by the
// last AddDrive/RemoveDrive converges, and returns its outcome.
func (a *Array) WaitRebalance() error {
	a.cl.Rt.Run()
	var done bool
	var err error
	a.call(func() { done, err = a.rebalDone, a.rebalErr })
	if !done {
		return fmt.Errorf("draid: rebalance stalled")
	}
	return err
}

// DriveCount returns the number of physical drives the layout addresses:
// the stripe width for a fixed layout, the (possibly grown) cluster for a
// declustered one.
func (a *Array) DriveCount() int {
	var n int
	a.call(func() { n = a.host.Drives() })
	return n
}

// CurrentRebalance reports the in-flight (or last) rebalance/drain
// progress; the zero value means none ever ran.
func (a *Array) CurrentRebalance() RebalanceStatus {
	if a.sup == nil {
		return RebalanceStatus{}
	}
	var st RebalanceStatus
	a.call(func() { st = a.sup.Rebalancer().Status() })
	return st
}

// Stats exposes host-controller counters.
func (a *Array) Stats() core.Stats {
	var st core.Stats
	a.call(func() { st = a.host.Stats() })
	return st
}

// MemberHealth returns every member's detection state. Without a configured
// detector, members the controller has marked failed report Failed and the
// rest Healthy.
func (a *Array) MemberHealth() []MemberState {
	var out []MemberState
	a.call(func() {
		if a.sup != nil {
			out = a.sup.Detector().States()
			return
		}
		out = make([]MemberState, a.host.Drives())
		for _, m := range a.host.FailedMembers() {
			out[m] = Failed
		}
	})
	return out
}

// RebuildStatus reports hot-spare rebuild progress (zero value when no
// supervisor is configured or no rebuild is running).
func (a *Array) RebuildStatus() RebuildStatus {
	if a.sup == nil {
		return RebuildStatus{}
	}
	var st RebuildStatus
	a.call(func() { st = a.sup.Rebuilder().Status() })
	return st
}

// ScrubStatus reports background-scrubber progress: passes completed,
// current position, and cumulative repair counts (zero value when no
// scrubbing has been configured or run).
func (a *Array) ScrubStatus() ScrubStatus {
	var st ScrubStatus
	a.call(func() {
		if a.sup != nil {
			st = a.sup.Scrubber().Status()
		} else if a.adhocScrub != nil {
			st = a.adhocScrub.Status()
		}
	})
	return st
}

// ScrubNow runs one full foreground scrub pass — verifying checksum and
// parity coherence on every stripe and repairing latent errors in place —
// and returns the resulting status. It advances virtual time until the pass
// completes and works with or without ScrubInterval; without Integrity a
// scrub can only re-silver parity to match the data.
func (a *Array) ScrubNow() (ScrubStatus, error) {
	var st ScrubStatus
	var err error
	done := false
	a.call(func() {
		scr := a.adhocScrub
		if a.sup != nil {
			scr = a.sup.Scrubber()
		} else if scr == nil {
			scr = repair.NewScrubber(a.cl.Rt, a.host, repair.ScrubberConfig{RateMBps: a.scrubRate}, a.cl.Tracer)
			a.adhocScrub = scr
		}
		scr.RunPass(func(s repair.ScrubStatus, e error) { st, err, done = s, e, true })
	})
	a.cl.Rt.Run()
	if !done {
		return st, fmt.Errorf("draid: scrub pass stalled")
	}
	return st, err
}

// LostRegions lists virtual byte ranges sacrificed to media double faults —
// latent errors past the parity budget, the classic RAID-5 rebuild hazard.
// Reads overlapping a lost region fail fast with ErrMediaError instead of
// returning fabricated bytes; a full rewrite of the range clears it.
func (a *Array) LostRegions() []LostRegion {
	var out []LostRegion
	a.call(func() { out = a.host.LostRegions() })
	return out
}

// Injector is the fault-injection surface of an array, obtained from
// Array.Inject. Media-level injections report ErrUnsupported on backends
// whose drives lack media hooks (for example, file-backed realtime drives).
type Injector struct {
	a *Array
}

// Inject returns the array's fault-injection surface.
func (a *Array) Inject() Injector { return Injector{a: a} }

// MediaError plants a latent sector error under the virtual byte range
// [off, off+n): the member drives backing those bytes fail reads of the
// affected sectors with a media-error status until something rewrites them.
// With Integrity enabled, array reads still succeed via parity
// reconstruction and the damage is repaired in place (repair-on-read).
func (in Injector) MediaError(off, n int64) error {
	return in.a.injectOnRange(off, n, func(mi backend.MediaInjector, dOff, dLen int64) {
		mi.InjectMediaError(dOff, dLen)
	}, false)
}

// BitRot silently corrupts the stored bytes under the virtual byte range
// [off, off+n). Without Integrity the rot is served to readers as-is (the
// silent-corruption baseline); with Integrity the per-block checksums catch
// it and reads are satisfied via reconstruction, then repaired. Requires
// stored data: on a SizeOnly array it reports ErrUnsupported.
func (in Injector) BitRot(off, n int64) error {
	return in.a.injectOnRange(off, n, func(mi backend.MediaInjector, dOff, dLen int64) {
		mi.InjectBitRot(dOff, dLen)
	}, true)
}

// LatentErrorRate gives every member drive a spontaneous URE rate: each
// drive read grows, with the given probability, a new latent media-error
// range somewhere on the drive (the paper-scale 10^-15..10^-14 per-bit rates
// are impractical to simulate; this accelerates them). Seeded per drive from
// Config.Seed, so runs are reproducible. Pass 0 to stop.
func (in Injector) LatentErrorRate(rate float64) error {
	a := in.a
	var err error
	a.call(func() {
		for m := 0; m < a.host.Drives(); m++ {
			node := int(a.host.MemberNode(m))
			mi, ok := a.cl.Drives[node].(backend.MediaInjector)
			if !ok {
				err = fmt.Errorf("draid: latent-error injection: %w", ErrUnsupported)
				return
			}
			mi.SetLatentErrorRate(rate, a.seed+int64(m)*7919)
		}
	})
	return err
}

// SlowDrive installs (or, with a SlowNone profile, clears) a deterministic
// latency-inflation profile on member drive i — the grey-failure injection:
// the drive keeps answering correctly, just slowly. On the simulation the
// profile scales the calibrated drive model's service rate and access
// latency; on the realtime backend it inflates a synthetic per-op latency
// (see SlowProfile.Base). Jitter is seeded per drive from Config.Seed.
// Reports ErrUnsupported on backends whose drives lack the hook (for
// example, file-backed realtime drives).
func (in Injector) SlowDrive(i int, p SlowProfile) error {
	a := in.a
	var err error
	a.call(func() {
		if i < 0 || i >= a.host.Drives() {
			err = fmt.Errorf("draid: slow-drive injection: member %d out of range", i)
			return
		}
		si, ok := a.cl.Drives[int(a.host.MemberNode(i))].(backend.SlowInjector)
		if !ok {
			err = fmt.Errorf("draid: slow-drive injection: %w", ErrUnsupported)
			return
		}
		si.SetSlowProfile(p.toBackend(), a.seed+int64(i)*7919+104729)
	})
	return err
}

// PartitionDir selects which direction(s) of a node pair a partition cuts:
// symmetric (PartitionBoth) or asymmetric (one way keeps delivering — the
// classic half-open failure).
type PartitionDir = backend.PartitionDir

// Partition directions.
const (
	PartitionBoth = backend.PartitionBoth
	PartitionAToB = backend.PartitionAToB
	PartitionBToA = backend.PartitionBToA
)

// PartitionHost cuts the fabric between the host controller and member drive
// i. Cut messages vanish after consuming send bandwidth, exactly like
// messages to a down node: the sender's op deadline notices, nothing else.
// Directions read host→drive as A→B. Reports ErrUnsupported on transports
// without partition hooks.
func (in Injector) PartitionHost(i int, dir PartitionDir) error {
	return in.a.partitionOp(core.HostID, i, dir, false)
}

// HealHostPartition restores the host↔drive i fabric in the given
// direction(s).
func (in Injector) HealHostPartition(i int, dir PartitionDir) error {
	return in.a.partitionOp(core.HostID, i, dir, true)
}

// PartitionPeers cuts the target-to-target fabric between member drives i
// and j — the peer-to-peer parity and reconstruction path — while both keep
// talking to the host. Directions read i→j as A→B. On the simulated fabric,
// drives co-located on one storage server (DrivesPerServer > 1) exchange
// local memory copies and cannot be partitioned from each other: the cut is
// a silent no-op there.
func (in Injector) PartitionPeers(i, j int, dir PartitionDir) error {
	return in.a.peerPartitionOp(i, j, dir, false)
}

// HealPeerPartition restores the drive i ↔ drive j fabric in the given
// direction(s).
func (in Injector) HealPeerPartition(i, j int, dir PartitionDir) error {
	return in.a.peerPartitionOp(i, j, dir, true)
}

// IsolateHost cuts the host off from every member drive in both directions —
// the full partition a takeover scenario starts from. Heal with
// HealHostIsolation.
func (in Injector) IsolateHost() error {
	return in.a.eachMember(func(i int) error {
		return in.PartitionHost(i, PartitionBoth)
	})
}

// HealHostIsolation reverses IsolateHost.
func (in Injector) HealHostIsolation() error {
	return in.a.eachMember(func(i int) error {
		return in.HealHostPartition(i, PartitionBoth)
	})
}

// DuplicateNext arms a one-shot duplication of the next capsule in each
// direction between the host and member drive i — a retransmission the
// fabric resolved late. The protocol must shrug it off: writes are
// idempotent and completions for retired command IDs are discarded. Reports
// ErrUnsupported on transports without duplication hooks.
func (in Injector) DuplicateNext(i int) error {
	a := in.a
	di, ok := a.cl.Fab.(backend.DuplicateInjector)
	if !ok {
		return fmt.Errorf("draid: duplicate injection: %w", ErrUnsupported)
	}
	var err error
	a.call(func() {
		if i < 0 || i >= a.host.Drives() {
			err = fmt.Errorf("draid: duplicate injection: member %d out of range", i)
			return
		}
		bID := a.host.MemberNode(i)
		di.DuplicateNext(core.HostID, bID)
		di.DuplicateNext(bID, core.HostID)
	})
	return err
}

// SetEpochChecks enables or disables server-side epoch enforcement on every
// bdev of the cluster. Disabling it is a deliberate fault injection — the
// chaos harness's "teeth" mode — that reproduces the stale-destage
// corruption the membership layer exists to prevent: a superseded host's
// writes are applied instead of rejected. Checks are on by default; never
// disable them outside a test.
func (in Injector) SetEpochChecks(on bool) {
	for _, s := range in.a.cl.Servers {
		s.SetEpochChecks(on)
	}
}

// partitionOp validates a member index and applies one host↔member partition
// change.
func (a *Array) partitionOp(aID core.NodeID, b int, dir PartitionDir, heal bool) error {
	pi, ok := a.cl.Fab.(backend.PartitionInjector)
	if !ok {
		return fmt.Errorf("draid: partition injection: %w", ErrUnsupported)
	}
	var err error
	a.call(func() {
		if b < 0 || b >= a.host.Drives() {
			err = fmt.Errorf("draid: partition injection: member %d out of range", b)
			return
		}
		bID := a.host.MemberNode(b)
		if heal {
			pi.HealPartition(aID, bID, dir)
		} else {
			pi.InjectPartition(aID, bID, dir)
		}
	})
	return err
}

// peerPartitionOp applies one drive↔drive partition change.
func (a *Array) peerPartitionOp(i, j int, dir PartitionDir, heal bool) error {
	pi, ok := a.cl.Fab.(backend.PartitionInjector)
	if !ok {
		return fmt.Errorf("draid: partition injection: %w", ErrUnsupported)
	}
	var err error
	a.call(func() {
		if i < 0 || i >= a.host.Drives() || j < 0 || j >= a.host.Drives() || i == j {
			err = fmt.Errorf("draid: partition injection: member pair (%d,%d) invalid", i, j)
			return
		}
		aID, bID := a.host.MemberNode(i), a.host.MemberNode(j)
		if heal {
			pi.HealPartition(aID, bID, dir)
		} else {
			pi.InjectPartition(aID, bID, dir)
		}
	})
	return err
}

// eachMember runs fn over every member index, stopping at the first error.
func (a *Array) eachMember(fn func(int) error) error {
	var n int
	a.call(func() { n = a.host.Drives() })
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

// FailDrive is Array.FailDrive, grouped here for discoverability.
func (in Injector) FailDrive(i int) { in.a.FailDrive(i) }

// CrashDrive is Array.CrashDrive, grouped here for discoverability.
func (in Injector) CrashDrive(i int) { in.a.CrashDrive(i) }

// injectOnRange maps a virtual byte range to the member drives and per-drive
// offsets backing it, following rebuild-time member moves onto spares. It
// reports ErrUnsupported — without partial effect — when any backing drive
// lacks media hooks (or stored data, when needStore is set).
func (a *Array) injectOnRange(off, n int64, fn func(backend.MediaInjector, int64, int64), needStore bool) error {
	var err error
	a.call(func() {
		geo := a.host.Geometry()
		lay := a.host.Layout()
		extents := geo.Split(off, n)
		targets := make([]backend.MediaInjector, len(extents))
		for i, e := range extents {
			member := geo.DataDrive(e.Stripe, e.Chunk)
			drive := lay.Drive(e.Stripe, member)
			d := a.cl.Drives[int(a.host.MemberNode(drive))]
			mi, ok := d.(backend.MediaInjector)
			if !ok || (needStore && !d.StoresData()) {
				err = fmt.Errorf("draid: media-fault injection: %w", ErrUnsupported)
				return
			}
			targets[i] = mi
		}
		for i, e := range extents {
			fn(targets[i], lay.StripeBase(e.Stripe)+e.Off, e.Len)
		}
	})
	return err
}

// InjectMediaError plants a latent sector error under [off, off+n).
//
// Deprecated: use Inject().MediaError, which reports backend support instead
// of silently assuming it.
func (a *Array) InjectMediaError(off, n int64) { _ = a.Inject().MediaError(off, n) }

// InjectBitRot silently corrupts the stored bytes under [off, off+n).
//
// Deprecated: use Inject().BitRot, which reports backend support instead of
// panicking on size-only arrays.
func (a *Array) InjectBitRot(off, n int64) { _ = a.Inject().BitRot(off, n) }

// SetLatentErrorRate gives every member drive a spontaneous URE rate.
//
// Deprecated: use Inject().LatentErrorRate, which reports backend support.
func (a *Array) SetLatentErrorRate(rate float64) { _ = a.Inject().LatentErrorRate(rate) }

// HostEpoch returns the controller's cluster-granted membership epoch
// (0 when Config.EpochFencing is off).
func (a *Array) HostEpoch() uint64 {
	var e uint64
	a.call(func() { e = a.host.Epoch() })
	return e
}

// HostFenced reports whether the controller has stood down — its lease
// lapsed or a storage server rejected it with a stale-epoch status. A fenced
// controller fails all further I/O with ErrFenced/ErrStaleEpoch; bring up a
// successor with SeizeHost or FailoverHost.
func (a *Array) HostFenced() bool {
	var f bool
	a.call(func() { f = a.host.Fenced() })
	return f
}

// StaleRejects returns the total number of commands the storage servers
// refused for carrying a superseded host epoch — each one a write or read a
// fenced-out predecessor attempted after a takeover.
func (a *Array) StaleRejects() int64 {
	var n int64
	for _, s := range a.cl.Servers {
		n += s.StaleRejects()
	}
	return n
}

// SparesAvailable returns how many hot spares remain in the pool.
func (a *Array) SparesAvailable() int {
	if a.sup == nil {
		return 0
	}
	var n int
	a.call(func() { n = a.sup.SparesAvailable() })
	return n
}

// RecoveryEvents returns the supervisor's recovery log: detection, rebuild,
// and failover milestones in virtual-time order.
func (a *Array) RecoveryEvents() []RecoveryEvent {
	if a.sup == nil {
		return nil
	}
	var out []RecoveryEvent
	a.call(func() { out = a.sup.Events() })
	return out
}

// Supervisor exposes the fault-supervision stack for advanced scenarios
// (nil unless Spares or Health.Detect was configured).
func (a *Array) Supervisor() *repair.Supervisor { return a.sup }

// FailoverHost crashes the current host controller and brings up a
// replacement that adopts the array: it inherits the member map and rebuild
// state, consumes the crashed controller's write-intent bitmap, resyncs
// exactly the dirty stripes (§5.4 — never a full-array scan), and resumes
// service. Outstanding I/O on the old controller is abandoned (its callbacks
// never fire), exactly as a real controller crash loses in-flight requests.
// Returns the number of stripes resynced.
func (a *Array) FailoverHost() (int, error) {
	if _, offloaded := a.dev.(*core.OffloadClient); offloaded {
		return 0, fmt.Errorf("draid: host failover with an offloaded controller is not supported")
	}
	var dirty []int64
	a.call(func() {
		old := a.host
		old.Crash()
		a.regrantEpoch()
		replacement := a.cl.NewDRAID(a.hostCfg) // takes over the fabric endpoint
		dirty = replacement.Adopt(old)
		a.rebind(replacement)
	})
	return a.resyncDirty(dirty)
}

// SeizeHost brings up a replacement controller WITHOUT crashing the current
// one — the partitioned-zombie takeover. Requires EpochFencing: the
// replacement is granted the next host epoch, so the storage servers fence
// the old controller's in-flight and retried commands with StatusStaleEpoch
// the moment the replacement's first command arrives, and the old
// controller's own I/O fails with ErrStaleEpoch (or ErrFenced once its lease
// lapses). Like FailoverHost, the replacement adopts the member map, staged
// writes, and write-intent bitmap, and resyncs exactly the dirty stripes.
// Returns the number of stripes resynced.
//
// With WriteBack on, configure HostLease (or heal the partition promptly):
// an isolated predecessor with no lease retries its stale destages forever,
// and the deterministic backends' run-to-quiescence sync ops wait for it.
func (a *Array) SeizeHost() (int, error) {
	if _, offloaded := a.dev.(*core.OffloadClient); offloaded {
		return 0, fmt.Errorf("draid: host takeover with an offloaded controller is not supported")
	}
	if a.hostCfg.Epoch == 0 {
		return 0, fmt.Errorf("draid: SeizeHost requires EpochFencing: %w", ErrUnsupported)
	}
	var dirty []int64
	a.call(func() {
		old := a.host
		a.regrantEpoch()
		replacement := a.cl.NewDRAID(a.hostCfg) // takes over the fabric endpoint
		dirty = replacement.Seize(old)
		a.rebind(replacement)
	})
	return a.resyncDirty(dirty)
}

// regrantEpoch advances the stored host config to the next cluster-granted
// epoch before a takeover builds the replacement. No-op with fencing off.
func (a *Array) regrantEpoch() {
	if a.hostCfg.Epoch == 0 {
		return
	}
	vol := core.VolumeID(0)
	if a.vol != nil {
		vol = a.vol.ID
	}
	grantEpoch(a.cl, vol, &a.hostCfg, a.hostCfg.Lease)
}

// rebind points the array and its supervision stack at a replacement
// controller. Runs inside call().
func (a *Array) rebind(replacement *core.HostController) {
	if a.sup != nil {
		a.sup.Rebind(replacement)
	}
	if a.adhocScrub != nil {
		a.adhocScrub.Rebind(replacement)
	}
	a.host = replacement
	if a.realtime {
		a.dev = loopDev{rt: a.cl.Rt, dev: replacement}
	} else {
		a.dev = replacement
	}
}

// resyncDirty runs the §5.4 failover resync over the adopted dirty stripes.
func (a *Array) resyncDirty(dirty []int64) (int, error) {
	var ferr error
	done := false
	repair.Failover(a.cl.Rt, a.host, dirty, func(err error) { ferr, done = err, true })
	a.cl.Rt.Run()
	if !done {
		return 0, fmt.Errorf("draid: failover resync stalled")
	}
	return len(dirty), ferr
}

// HostTraffic returns the client-side NIC (outbound, inbound) bytes since
// the last ResetTraffic — the controller node's NIC normally, the thin
// client's NIC when the controller is offloaded. For a volume opened
// through a Pool, only this volume's share of the shared host NIC is
// reported.
func (a *Array) HostTraffic() (out, in int64) {
	if a.vol != nil {
		return a.cl.VolumeHostBytes(a.vol.ID)
	}
	if a.clientNode == nil { // realtime: transport-level accounting only
		return a.cl.TotalHostBytes()
	}
	return a.clientNode.BytesOut(), a.clientNode.BytesIn()
}

// ResetTraffic zeroes the NIC counters. On a Pool volume this resets the
// whole shared cluster's counters, co-tenant volumes included.
func (a *Array) ResetTraffic() {
	a.cl.ResetTraffic()
	if a.clientNode != nil {
		a.clientNode.ResetCounters()
	}
}

// VolumeID returns the array's volume number on its cluster (0 for a
// standalone draid.New array).
func (a *Array) VolumeID() int {
	if a.vol != nil {
		return int(a.vol.ID)
	}
	return 0
}

// Flush destages every staged write to the drives and advances time until
// the stage has drained, reporting the first destage failure (failed stripes
// stay staged for retry). Without Config.WriteBack it completes immediately.
func (a *Array) Flush() error {
	var ferr error
	done := false
	a.call(func() {
		a.host.FlushStage(func(err error) { ferr, done = err, true })
	})
	a.cl.Rt.Run()
	if !done {
		return fmt.Errorf("draid: flush stalled")
	}
	return ferr
}

// Cluster exposes the underlying testbed for advanced scenarios (fault
// injection, per-NIC inspection).
func (a *Array) Cluster() *cluster.Cluster { return a.cl }

// Controller exposes the dRAID host controller.
func (a *Array) Controller() *core.HostController { return a.host }

// BenchmarkSpec configures a Benchmark run.
type BenchmarkSpec struct {
	// IOSizeBytes per operation (default 128 KB).
	IOSizeBytes int64
	// ReadRatio in [0,1] (default 0 = write-only).
	ReadRatio float64
	// QueueDepth of the closed loop (default 32).
	QueueDepth int
	// Ramp and Measure windows of virtual time (defaults 30ms / 100ms).
	Ramp, Measure time.Duration
}

// BenchmarkResult reports a Benchmark run. The latency quantiles are the
// worse of the read and write distributions.
type BenchmarkResult struct {
	BandwidthMBps float64
	IOPS          float64
	AvgLatency    time.Duration
	P50Latency    time.Duration
	P99Latency    time.Duration
	P999Latency   time.Duration
	// Write-mix ratios over the run (ramp included): the fraction of
	// per-stripe write executions that ran as full-stripe, read-modify-write,
	// and reconstruct-write. They sum to 1 when any such write ran (fallback
	// and plain degraded writes are outside all three buckets).
	FullStripeFrac float64
	RMWFrac        float64
	RCWFrac        float64
}

// Benchmark runs an FIO-style random workload against the array.
func (a *Array) Benchmark(spec BenchmarkSpec) BenchmarkResult {
	if spec.IOSizeBytes == 0 {
		spec.IOSizeBytes = 128 << 10
	}
	if spec.QueueDepth == 0 {
		spec.QueueDepth = 32
	}
	if spec.Ramp == 0 {
		spec.Ramp = 30 * time.Millisecond
	}
	if spec.Measure == 0 {
		spec.Measure = 100 * time.Millisecond
	}
	before := a.Stats()
	r := fio.Run(fio.Job{
		Name: "draid", Dev: a.dev, Eng: a.cl.Rt,
		IOSize: spec.IOSizeBytes, ReadRatio: spec.ReadRatio,
		QueueDepth: spec.QueueDepth,
		Ramp:       sim.Duration(spec.Ramp), Measure: sim.Duration(spec.Measure),
	})
	after := a.Stats()
	worse := func(rd, wr float64) time.Duration {
		if wr > rd {
			return time.Duration(wr)
		}
		return time.Duration(rd)
	}
	res := BenchmarkResult{
		BandwidthMBps: r.BandwidthMBps(),
		IOPS:          r.IOPS(),
		AvgLatency:    time.Duration(r.AvgLatency() * 1e3),
		P50Latency:    worse(r.ReadLat.P50, r.WriteLat.P50),
		P99Latency:    worse(r.ReadLat.P99, r.WriteLat.P99),
		P999Latency:   worse(r.ReadLat.P999, r.WriteLat.P999),
	}
	full := float64(after.FullStripeWrites - before.FullStripeWrites)
	rmw := float64(after.RMWWrites - before.RMWWrites)
	rcw := float64(after.RCWWrites - before.RCWWrites)
	if total := full + rmw + rcw; total > 0 {
		res.FullStripeFrac = full / total
		res.RMWFrac = rmw / total
		res.RCWFrac = rcw / total
	}
	return res
}

// targetNICs returns each target's first NIC, in member order.
func targetNICs(cl *cluster.Cluster) []*simnet.NIC {
	out := make([]*simnet.NIC, len(cl.Targets))
	for i, t := range cl.Targets {
		out[i] = t.NICs()[0]
	}
	return out
}
