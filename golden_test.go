package draid_test

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"draid"
	"draid/internal/experiments"
)

// The golden files under testdata/golden were captured from the tree
// immediately before the volume-layer refactor. These tests pin the
// refactor's core promise: a single-volume array built through draid.New is
// byte-for-byte identical to the pre-volume code on the same seed — same
// trace, same traffic, same experiment reports.

func golden(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile("testdata/golden/" + name)
	if err != nil {
		t.Fatalf("golden file: %v", err)
	}
	return b
}

// runGoldenWorkload drives the canonical golden workload (two writes, a
// member failure, a degraded read) against cfg and returns the array for
// trace/stats comparison.
func runGoldenWorkload(t *testing.T, cfg draid.Config) *draid.Array {
	t.Helper()
	arr, err := draid.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 256<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := arr.WriteSync(0, payload); err != nil {
		t.Fatal(err)
	}
	if err := arr.WriteSync(96<<10, payload[:32<<10]); err != nil {
		t.Fatal(err)
	}
	arr.FailDrive(2)
	got, err := arr.ReadSync(0, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("degraded read returned wrong data")
	}
	return arr
}

func goldenTrace(t *testing.T, arr *draid.Array) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := arr.Trace().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGoldenSingleVolumeTraceAndStats(t *testing.T) {
	arr := runGoldenWorkload(t, draid.Config{
		Drives: 5, ChunkSize: 64 << 10, DriveCapacity: 1 << 20,
		Seed: 3, Observe: draid.Observe{Trace: true},
	})
	if got, want := goldenTrace(t, arr), golden(t, "golden_single_volume_trace.json"); !bytes.Equal(got, want) {
		t.Errorf("single-volume Chrome trace drifted from pre-refactor golden (%d bytes vs %d)",
			len(got), len(want))
	}

	o, in := arr.HostTraffic()
	stats := arr.Stats()
	summary := fmt.Sprintf("hostOut=%d hostIn=%d writes=%d reads=%d degraded=%d rmw=%d full=%d\n",
		o, in, stats.Writes, stats.Reads, stats.DegradedReads, stats.RMWWrites, stats.FullStripeWrites)
	if want := golden(t, "golden_single_volume_stats.txt"); summary != string(want) {
		t.Errorf("traffic/stats summary drifted:\n got: %s want: %s", summary, want)
	}
}

// TestGoldenIntegrityDisabledByteIdentical pins the integrity layer's
// zero-cost-when-off promise: with Integrity explicitly false (the default)
// the golden workload produces a trace byte-identical to the pre-integrity
// golden capture, and every integrity surface stays inert.
func TestGoldenIntegrityDisabledByteIdentical(t *testing.T) {
	arr := runGoldenWorkload(t, draid.Config{
		Drives: 5, ChunkSize: 64 << 10, DriveCapacity: 1 << 20,
		Seed: 3, Observe: draid.Observe{Trace: true},
		Integrity: false,
	})
	if got, want := goldenTrace(t, arr), golden(t, "golden_single_volume_trace.json"); !bytes.Equal(got, want) {
		t.Errorf("integrity-disabled trace not byte-identical to golden (%d bytes vs %d)",
			len(got), len(want))
	}
	if n := arr.Stats().MediaErrors; n != 0 {
		t.Errorf("integrity disabled but host counted %d media errors", n)
	}
	if lost := arr.LostRegions(); len(lost) != 0 {
		t.Errorf("integrity disabled but lost regions recorded: %v", lost)
	}
	if st := arr.ScrubStatus(); st.Enabled || st.Passes != 0 || st.MediaRepairs != 0 {
		t.Errorf("integrity disabled but scrubber reports activity: %+v", st)
	}
}

func TestGoldenExperimentReports(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweeps in -short mode")
	}
	for _, tc := range []struct {
		id     string
		seed   int64
		golden string
	}{
		{"fig09", 1, "golden_fig09_quick.txt"},
		{"fig12", 7, "golden_fig12_quick_seed7.txt"},
	} {
		t.Run(tc.id, func(t *testing.T) {
			got, err := experiments.Run(tc.id, experiments.Options{Quick: true, Seed: tc.seed})
			if err != nil {
				t.Fatal(err)
			}
			if want := golden(t, tc.golden); got != string(want) {
				t.Errorf("%s quick report drifted from pre-refactor golden", tc.id)
			}
		})
	}
}
