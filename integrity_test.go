package draid_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"draid"
	"draid/internal/core"
)

// integrityArray builds a small array with end-to-end checksums on.
func integrityArray(t *testing.T, cfg draid.Config) *draid.Array {
	t.Helper()
	cfg.Integrity = true
	if cfg.DriveCapacity == 0 {
		cfg.DriveCapacity = 1 << 20
	}
	return smallArray(t, cfg)
}

// TestScrubRepairsBitRot is the scrub smoke test: silent corruption planted
// under a virtual range is found by an on-demand pass, repaired in place, and
// a second pass finds nothing.
func TestScrubRepairsBitRot(t *testing.T) {
	arr := integrityArray(t, draid.Config{Seed: 5})
	ref := randBytes(9, int(arr.Size()))
	if err := arr.WriteSync(0, ref); err != nil {
		t.Fatal(err)
	}
	arr.InjectBitRot(100<<10, 8<<10)

	st, err := arr.ScrubNow()
	if err != nil {
		t.Fatal(err)
	}
	if st.MediaRepairs == 0 {
		t.Fatalf("scrub found no media repairs: %+v", st)
	}
	if st.ScrubbedStripes == 0 || st.Errors != 0 {
		t.Fatalf("scrub pass unhealthy: %+v", st)
	}

	got, err := arr.ReadSync(0, arr.Size())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("data corrupt after scrub repair")
	}

	st2, err := arr.ScrubNow()
	if err != nil {
		t.Fatal(err)
	}
	if st2.MediaRepairs != st.MediaRepairs || st2.ParityRepairs != st.ParityRepairs {
		t.Fatalf("second scrub pass found more damage: %+v then %+v", st, st2)
	}
}

// TestScrubBackgroundPass proves the periodic scrubber repairs latent media
// errors no foreground read ever touches, entirely on background timers.
func TestScrubBackgroundPass(t *testing.T) {
	arr := integrityArray(t, draid.Config{
		Seed:          6,
		ScrubInterval: time.Millisecond,
	})
	ref := randBytes(10, int(arr.Size()))
	if err := arr.WriteSync(0, ref); err != nil {
		t.Fatal(err)
	}
	arr.InjectMediaError(300<<10, 4<<10)

	// Nothing reads the damaged range; only the background pass can find it.
	arr.RunFor(10 * time.Millisecond)
	st := arr.ScrubStatus()
	if !st.Enabled {
		t.Fatal("scrubber not enabled despite ScrubInterval")
	}
	if st.Passes == 0 {
		t.Fatalf("no background pass completed in 10ms: %+v", st)
	}
	if st.MediaRepairs == 0 {
		t.Fatalf("background scrub missed the injected media error: %+v", st)
	}

	got, err := arr.ReadSync(0, arr.Size())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("data corrupt after background scrub")
	}
	if arr.Stats().MediaErrors == 0 {
		t.Fatal("host never saw a media-error completion")
	}
}

// TestScrubEventsInRecoveryLog checks scrub life-cycle events land in the
// supervisor's recovery log alongside detection/rebuild milestones.
func TestScrubEventsInRecoveryLog(t *testing.T) {
	arr := integrityArray(t, draid.Config{Seed: 7, ScrubInterval: time.Millisecond})
	ref := randBytes(11, 256<<10)
	if err := arr.WriteSync(0, ref); err != nil {
		t.Fatal(err)
	}
	arr.InjectBitRot(64<<10, 4<<10)
	arr.RunFor(10 * time.Millisecond)

	kinds := map[string]int{}
	for _, e := range arr.RecoveryEvents() {
		kinds[e.Kind]++
	}
	if kinds["scrub-pass"] == 0 {
		t.Fatalf("no scrub-pass event in recovery log: %v", kinds)
	}
	if kinds["scrub-repair"] == 0 {
		t.Fatalf("no scrub-repair event in recovery log: %v", kinds)
	}
}

// TestRepairOnRead proves a normal read through detected corruption succeeds
// via reconstruction AND heals the drive: the damage is gone afterwards.
func TestRepairOnRead(t *testing.T) {
	arr := integrityArray(t, draid.Config{Seed: 8})
	ref := randBytes(12, 512<<10)
	if err := arr.WriteSync(0, ref); err != nil {
		t.Fatal(err)
	}

	arr.InjectBitRot(40<<10, 12<<10)
	got, err := arr.ReadSync(32<<10, 32<<10)
	if err != nil {
		t.Fatalf("read through bit rot: %v", err)
	}
	if !bytes.Equal(got, ref[32<<10:64<<10]) {
		t.Fatal("reconstructed read returned wrong bytes")
	}
	if arr.Stats().MediaErrors == 0 {
		t.Fatal("checksum mismatch never surfaced as a media error")
	}
	arr.Run() // let the fire-and-forget in-place repair drain
	if arr.Stats().RepairedRanges == 0 {
		t.Fatal("no in-place repair recorded")
	}

	// The repair rewrote the damaged sectors: a clean scrub proves it.
	st, err := arr.ScrubNow()
	if err != nil {
		t.Fatal(err)
	}
	if st.MediaRepairs != 0 {
		t.Fatalf("damage survived repair-on-read: %+v", st)
	}
}

// TestMediaErrorDegradedRead layers a latent sector error on top of a failed
// drive: RAID-6 still reconstructs through the second parity.
func TestMediaErrorDegradedRead(t *testing.T) {
	arr := integrityArray(t, draid.Config{Level: draid.Raid6, Drives: 6, Seed: 9})
	ref := randBytes(13, 512<<10)
	if err := arr.WriteSync(0, ref); err != nil {
		t.Fatal(err)
	}
	arr.InjectMediaError(8<<10, 4<<10)
	arr.FailDrive(arr.Controller().Geometry().DataDrive(0, 1))

	got, err := arr.ReadSync(0, 256<<10)
	if err != nil {
		t.Fatalf("degraded read across a URE: %v", err)
	}
	if !bytes.Equal(got, ref[:256<<10]) {
		t.Fatal("degraded read across a URE returned wrong bytes")
	}
}

// TestMediaDoubleFaultTyped drives RAID-5 past its parity budget with two
// latent errors in one stripe and checks the failure is typed, not silent.
func TestMediaDoubleFaultTyped(t *testing.T) {
	arr := integrityArray(t, draid.Config{Seed: 10})
	geo := arr.Controller().Geometry()
	ref := randBytes(14, int(geo.StripeDataSize()))
	if err := arr.WriteSync(0, ref); err != nil {
		t.Fatal(err)
	}
	// Two different data chunks of stripe 0: reconstruction needs both.
	arr.InjectMediaError(4<<10, 4<<10)
	arr.InjectMediaError(geo.ChunkSize+4<<10, 4<<10)

	_, err := arr.ReadSync(0, geo.StripeDataSize())
	if err == nil {
		t.Fatal("read across a media double fault returned data")
	}
	if !errors.Is(err, draid.ErrMediaError) {
		t.Fatalf("double-fault error %v does not match ErrMediaError", err)
	}
}

// rebuildWithURE seeds a full device, plants sector errors on survivor
// chunks, fails a member, and rebuilds it in place.
func rebuildWithURE(t *testing.T, cfg draid.Config, seed int64) (*draid.Array, []byte, int) {
	t.Helper()
	cfg.Seed = seed
	arr := integrityArray(t, cfg)
	ref := randBytes(seed+100, int(arr.Size()))
	geo := arr.Controller().Geometry()
	for off := int64(0); off < arr.Size(); off += geo.StripeDataSize() {
		if err := arr.WriteSync(off, ref[off:off+geo.StripeDataSize()]); err != nil {
			t.Fatal(err)
		}
	}
	// One URE per chosen stripe, always on data chunk 0 (rotation spreads
	// them over drives); every survivor chunk is read during rebuild, so
	// each is guaranteed to be hit.
	for _, s := range []int64{0, 3, 7} {
		arr.InjectMediaError(s*geo.StripeDataSize()+int64(seed%4)<<10, 4<<10)
	}
	member := geo.DataDrive(0, 1)
	arr.FailDrive(member)
	if err := arr.RebuildDrive(member, 0); err != nil {
		t.Fatalf("rebuild across UREs: %v", err)
	}
	return arr, ref, member
}

// TestIntegrityTortureRebuildURE is the URE-during-rebuild matrix across
// seeds: RAID-6 reconstructs through Q and loses nothing; RAID-5 records the
// affected ranges as lost instead of wedging, keeps serving everything else,
// and clears the holes on rewrite.
func TestIntegrityTortureRebuildURE(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("raid6/seed=%d", seed), func(t *testing.T) {
			arr, ref, _ := rebuildWithURE(t, draid.Config{Level: draid.Raid6, Drives: 6}, seed)
			if lost := arr.LostRegions(); len(lost) != 0 {
				t.Fatalf("RAID-6 rebuild lost data despite double parity: %v", lost)
			}
			got, err := arr.ReadSync(0, arr.Size())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, ref) {
				t.Fatal("device corrupt after RAID-6 rebuild through UREs")
			}
		})
		t.Run(fmt.Sprintf("raid5/seed=%d", seed), func(t *testing.T) {
			arr, ref, _ := rebuildWithURE(t, draid.Config{Level: draid.Raid5, Drives: 5}, seed)
			lost := arr.LostRegions()
			if len(lost) == 0 {
				t.Fatal("RAID-5 rebuild across UREs recorded no lost regions")
			}
			geo := arr.Controller().Geometry()
			sds := geo.StripeDataSize()
			overlaps := func(off, n int64) bool {
				for _, r := range lost {
					if off < r.Off+r.Len && r.Off < off+n {
						return true
					}
				}
				return false
			}
			// Stripes clear of lost regions read back byte-exact; stripes
			// overlapping one fail fast with the typed error.
			sawLost := false
			for off := int64(0); off < arr.Size(); off += sds {
				got, err := arr.ReadSync(off, sds)
				if overlaps(off, sds) {
					sawLost = true
					if !errors.Is(err, draid.ErrMediaError) {
						t.Fatalf("read over lost region at %d: err=%v, want ErrMediaError", off, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("read of intact stripe at %d: %v", off, err)
				}
				if !bytes.Equal(got, ref[off:off+sds]) {
					t.Fatalf("intact stripe at %d corrupt", off)
				}
			}
			if !sawLost {
				t.Fatal("no stripe overlapped a lost region")
			}
			// Rewriting the device clears every hole.
			fresh := randBytes(seed+200, int(arr.Size()))
			for off := int64(0); off < arr.Size(); off += sds {
				if err := arr.WriteSync(off, fresh[off:off+sds]); err != nil {
					t.Fatalf("rewrite at %d: %v", off, err)
				}
			}
			if lost := arr.LostRegions(); len(lost) != 0 {
				t.Fatalf("lost regions survived a full rewrite: %v", lost)
			}
			got, err := arr.ReadSync(0, arr.Size())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, fresh) {
				t.Fatal("device corrupt after rewrite over lost regions")
			}
		})
	}
}

// overlapsLost reports whether [off, off+n) intersects any lost region.
func overlapsLost(lost []draid.LostRegion, off, n int64) bool {
	for _, lr := range lost {
		if lr.Off < off+n && lr.Off+lr.Len > off {
			return true
		}
	}
	return false
}

// verifyWithLoss checks the whole device against model, reading around the
// lost regions: readable ranges must be model-exact, and reads over lost
// regions must fail with the typed media error rather than serve bytes.
// Unrecoverable ranges are discovered piecemeal — a failing read records the
// loss it trips over — so the walk rescans the lost list after every typed
// failure and requires it to have grown to cover the failure.
func verifyWithLoss(t *testing.T, arr *draid.Array, model []byte) {
	t.Helper()
	size := arr.Size()
	pos := int64(0)
	for guard := 0; pos < size; guard++ {
		if guard > 10000 {
			t.Fatal("verifyWithLoss: no progress")
		}
		var next *draid.LostRegion
		for _, lr := range arr.LostRegions() {
			if lr.Off+lr.Len > pos {
				lr := lr
				next = &lr
				break
			}
		}
		if next != nil && next.Off <= pos {
			hi := next.Off + next.Len
			if _, err := arr.ReadSync(pos, hi-pos); !errors.Is(err, draid.ErrMediaError) {
				t.Fatalf("read over lost region [%d,%d): want ErrMediaError, got %v", pos, hi, err)
			}
			pos = hi
			continue
		}
		end := size
		if next != nil {
			end = next.Off
		}
		got, err := arr.ReadSync(pos, end-pos)
		if err != nil {
			if !errors.Is(err, draid.ErrMediaError) {
				t.Fatalf("read [%d,+%d): %v", pos, end-pos, err)
			}
			if !overlapsLost(arr.LostRegions(), pos, end-pos) {
				t.Fatalf("read [%d,+%d) failed without recording loss: %v", pos, end-pos, err)
			}
			continue // lost list grew; rescan
		}
		if !bytes.Equal(got, model[pos:end]) {
			t.Fatalf("device diverged from model in [%d,%d)", pos, end)
		}
		pos = end
	}
}

// healLostRegions overwrites lost regions with fresh bytes (mirrored into
// model) until the list drains: overwriting re-encodes the bytes into the
// stripe redundancy and clears the loss, though a heal write landing in a
// stripe with further undiscovered damage may first surface new regions.
func healLostRegions(t *testing.T, arr *draid.Array, model []byte, seed int64) {
	t.Helper()
	for round := 0; round < 20; round++ {
		lost := arr.LostRegions()
		if len(lost) == 0 {
			return
		}
		for _, lr := range lost {
			fresh := randBytes(seed+101+lr.Off+int64(round), int(lr.Len))
			if err := arr.WriteSync(lr.Off, fresh); err != nil {
				t.Fatalf("heal write over %+v: %v", lr, err)
			}
			copy(model[lr.Off:], fresh)
		}
	}
	t.Fatalf("lost regions survive overwriting: %v", arr.LostRegions())
}

// verifyHealedDevice drives the array back to a fully readable, model-exact
// state: verify readable bytes, heal losses by overwriting, and require a
// final whole-device read to match the model (retrying the heal while full
// reads keep tripping over newly discovered unrecoverable ranges).
func verifyHealedDevice(t *testing.T, arr *draid.Array, model []byte, seed int64) {
	t.Helper()
	verifyWithLoss(t, arr, model)
	for round := 0; ; round++ {
		healLostRegions(t, arr, model, seed+1000*int64(round))
		got, err := arr.ReadSync(0, arr.Size())
		if err == nil {
			if !bytes.Equal(got, model) {
				t.Fatal("device diverged from model after healing")
			}
			return
		}
		if round >= 5 || !errors.Is(err, draid.ErrMediaError) {
			t.Fatalf("full read after healing: %v", err)
		}
	}
}

// TestIntegrityTortureScrubUnderWrites runs random foreground I/O with
// corruption injected throughout while the background scrubber trickles
// along, across seeds. Reads must either return model-exact bytes or fail
// with the typed media error over a recorded lost region (a URE landing in
// an aborted write's hole is honestly unrecoverable) — injected damage is
// never silently served to a reader.
func TestIntegrityTortureScrubUnderWrites(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			arr := integrityArray(t, draid.Config{
				Level: draid.Raid6, Drives: 6,
				ChunkSize:     32 << 10,
				Seed:          seed,
				ScrubInterval: 500 * time.Microsecond,
				ScrubRateMBps: 8000,
			})
			size := arr.Size()
			model := make([]byte, size)
			rng := rand.New(rand.NewSource(seed * 77))
			if err := arr.WriteSync(0, randBytes(seed, int(size))); err != nil {
				t.Fatal(err)
			}
			arr.Read(0, size, func(b []byte, err error) {
				if err != nil {
					t.Errorf("seed read: %v", err)
				}
				copy(model, b)
			})
			arr.Run()

			for iter := 0; iter < 40; iter++ {
				// Corrupt a random already-written range, alternating silent
				// rot (caught by checksum) with hard sector errors.
				cOff := rng.Int63n(size - 8<<10)
				cLen := int64(1+rng.Intn(8)) << 10
				if iter%2 == 0 {
					arr.InjectBitRot(cOff, cLen)
				} else {
					arr.InjectMediaError(cOff, cLen)
				}
				// Random foreground write.
				wLen := int64(1+rng.Intn(64)) << 10
				wOff := rng.Int63n(size - wLen)
				data := make([]byte, wLen)
				rng.Read(data)
				if err := arr.WriteSync(wOff, data); err != nil {
					t.Fatalf("iter %d write: %v", iter, err)
				}
				copy(model[wOff:], data)
				// Random foreground read, model-checked.
				rLen := int64(1+rng.Intn(64)) << 10
				rOff := rng.Int63n(size - rLen)
				got, err := arr.ReadSync(rOff, rLen)
				switch {
				case err != nil:
					// The only legitimate failure: typed media error over
					// bytes recorded lost. Anything else is a bug.
					if !errors.Is(err, draid.ErrMediaError) {
						t.Fatalf("iter %d read [%d,+%d): %v", iter, rOff, rLen, err)
					}
					if !overlapsLost(arr.LostRegions(), rOff, rLen) {
						t.Fatalf("iter %d read [%d,+%d) failed outside lost regions: %v", iter, rOff, rLen, err)
					}
				case !bytes.Equal(got, model[rOff:rOff+rLen]):
					t.Fatalf("iter %d read [%d,+%d) diverged from model", iter, rOff, rLen)
				}
				// Let background scrub passes interleave with the workload.
				arr.RunFor(200 * time.Microsecond)
			}

			arr.RunFor(5 * time.Millisecond) // final passes sweep leftovers
			st := arr.ScrubStatus()
			if st.Passes == 0 {
				t.Fatalf("no background scrub pass completed: %+v", st)
			}
			if lost := arr.LostRegions(); len(lost) != 0 {
				t.Logf("write-hole losses (reported, never served): %v", lost)
			}
			verifyHealedDevice(t, arr, model, seed)
		})
	}
}

// TestIntegrityTortureLatentErrors turns on spontaneous URE development and
// hammers reads: every read must return exact bytes or fail typed when UREs
// pile past the parity budget, and the scrubber plus repair-on-read must
// keep burning down the backlog.
func TestIntegrityTortureLatentErrors(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			arr := integrityArray(t, draid.Config{
				Level: draid.Raid6, Drives: 6,
				Seed:          seed,
				ScrubInterval: time.Millisecond,
			})
			size := arr.Size()
			ref := randBytes(seed+50, int(size))
			if err := arr.WriteSync(0, ref); err != nil {
				t.Fatal(err)
			}
			arr.SetLatentErrorRate(0.02)
			rng := rand.New(rand.NewSource(seed * 13))
			for iter := 0; iter < 60; iter++ {
				n := int64(1+rng.Intn(32)) << 10
				off := rng.Int63n(size - n)
				got, err := arr.ReadSync(off, n)
				if err != nil {
					// UREs developing on three chunks of one stripe faster
					// than repair burns them down exceed even RAID-6's
					// budget; the failure must be typed, never garbage.
					if !errors.Is(err, draid.ErrMediaError) {
						t.Fatalf("iter %d read: %v", iter, err)
					}
					continue
				}
				if !bytes.Equal(got, ref[off:off+n]) {
					t.Fatalf("iter %d read diverged", iter)
				}
			}
			arr.SetLatentErrorRate(0)
			arr.RunFor(5 * time.Millisecond)
			verifyHealedDevice(t, arr, ref, seed)
		})
	}
}

// TestIntegrityTortureHedgedReads races hedged reads against everything at
// once: a grey member whose chunk reads the hedger routinely abandons, bit
// rot and media errors landing anywhere — including on that same straggler,
// where the abandoned primary was also the URE victim and the parity solve
// must still produce exact bytes, never stale or zero data — the background
// scrubber repairing damage underneath, and a mid-run fail-stop crash whose
// hot-spare rebuild overlaps the remaining iterations. Every read verifies
// against a byte model or fails typed over a recorded lost region.
func TestIntegrityTortureHedgedReads(t *testing.T) {
	policies := []draid.HedgeConfig{
		{Policy: draid.HedgeFixedDelay, Delay: 100 * time.Microsecond},
		{Policy: draid.HedgeAdaptiveP95, MinSamples: 8},
	}
	for _, hc := range policies {
		for _, seed := range []int64{1, 2, 3} {
			t.Run(fmt.Sprintf("%s/seed=%d", hc.Policy, seed), func(t *testing.T) {
				arr := integrityArray(t, draid.Config{
					Level: draid.Raid6, Drives: 6,
					ChunkSize:     16 << 10,
					Spares:        1,
					Seed:          seed,
					Hedge:         hc,
					ScrubInterval: 500 * time.Microsecond,
					ScrubRateMBps: 8000,
					Health: draid.HealthConfig{
						Detect:         true,
						HeartbeatEvery: time.Millisecond,
						// Keep the grey member in service: this torture wants
						// hedges firing start to finish, not an early eviction.
						EvictAfter: -1,
					},
					RebuildRateMBps: 400,
				})
				size := arr.Size()
				model := make([]byte, size)
				rng := rand.New(rand.NewSource(seed * 131))
				if err := arr.WriteSync(0, randBytes(seed, int(size))); err != nil {
					t.Fatal(err)
				}
				arr.Read(0, size, func(b []byte, err error) {
					if err != nil {
						t.Errorf("seed read: %v", err)
					}
					copy(model, b)
				})
				arr.Run()
				if err := arr.Inject().SlowDrive(2, draid.SlowProfile{
					Kind: draid.SlowConstant, Factor: 25,
				}); err != nil {
					t.Fatalf("inject slow drive: %v", err)
				}

				check := func(iter int, rOff, rLen int64) {
					got, err := arr.ReadSync(rOff, rLen)
					switch {
					case err != nil:
						if !errors.Is(err, draid.ErrMediaError) {
							t.Fatalf("iter %d read [%d,+%d): %v", iter, rOff, rLen, err)
						}
						if !overlapsLost(arr.LostRegions(), rOff, rLen) {
							t.Fatalf("iter %d read [%d,+%d) failed outside lost regions: %v", iter, rOff, rLen, err)
						}
					case !bytes.Equal(got, model[rOff:rOff+rLen]):
						t.Fatalf("iter %d read [%d,+%d) diverged from model", iter, rOff, rLen)
					}
				}

				for iter := 0; iter < 40; iter++ {
					cOff := rng.Int63n(size - 8<<10)
					cLen := int64(1+rng.Intn(8)) << 10
					if iter%2 == 0 {
						arr.InjectBitRot(cOff, cLen)
					} else {
						arr.InjectMediaError(cOff, cLen)
					}
					// Read straight over the fresh damage: if the damaged chunk
					// lives on the grey member, the hedge abandons the very read
					// that would have reported the URE — the solve (or the
					// repair-on-read it stands down for) must still be exact.
					check(iter, cOff&^4095, 8<<10)
					wLen := int64(1+rng.Intn(64)) << 10
					wOff := rng.Int63n(size - wLen)
					data := make([]byte, wLen)
					rng.Read(data)
					if err := arr.WriteSync(wOff, data); err != nil {
						t.Fatalf("iter %d write: %v", iter, err)
					}
					copy(model[wOff:], data)
					rLen := int64(1+rng.Intn(64)) << 10
					check(iter, rng.Int63n(size-rLen), rLen)
					if iter == 15 {
						// Fail-stop a healthy member (not the grey one): the
						// heartbeat prober detects it and the hot-spare rebuild
						// runs under the rest of the loop.
						arr.CrashDrive(4)
					}
					arr.RunFor(200 * time.Microsecond)
				}

				arr.RunFor(20 * time.Millisecond) // rebuild + final scrub passes drain
				if st := arr.RebuildStatus(); st.Active {
					t.Fatalf("rebuild still active at end: %+v", st)
				}
				if got := arr.FailedDrives(); len(got) != 0 {
					t.Fatalf("failed drives after rebuild = %v, want none", got)
				}
				if arr.Stats().HedgedReads == 0 {
					t.Fatal("torture ran without a single hedged read; injection or policy wiring broken")
				}
				verifyHealedDevice(t, arr, model, seed)
			})
		}
	}
}

// TestWireCorruptionRetries is the end-to-end link-corruption proof: frames
// corrupted in flight are caught by the transport checksum and dropped at
// the receiving NIC, the §5.4 timeout/retry machinery resends them, and the
// I/O completes with correct bytes.
func TestWireCorruptionRetries(t *testing.T) {
	arr := smallArray(t, draid.Config{
		DriveCapacity: 4 << 20,
		MaxRetries:    10,
		RetryBackoff:  20 * time.Microsecond,
		OpDeadline:    2 * time.Millisecond,
		Seed:          11,
	})
	fab := arr.Cluster().Fabric
	for i := 0; i < 5; i++ {
		fab.Connection(core.HostID, core.NodeID(i)).InjectCorrupt(0.08)
	}
	ref := randBytes(15, 512<<10)
	if err := arr.WriteSync(0, ref); err != nil {
		t.Fatalf("write over corrupting links: %v", err)
	}
	got, err := arr.ReadSync(0, int64(len(ref)))
	if err != nil {
		t.Fatalf("read over corrupting links: %v", err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("corrupted links leaked wrong bytes to a reader")
	}
	if fab.CorruptDrops() == 0 {
		t.Fatal("no corrupted frame was ever dropped (injection ineffective)")
	}
	if arr.Stats().Retries == 0 {
		t.Fatal("corruption recovered without any retry (should be impossible)")
	}
}

// TestWireCorruptionDirectional corrupts only the host→target direction:
// requests die, responses flow, and retries still converge.
func TestWireCorruptionDirectional(t *testing.T) {
	arr := smallArray(t, draid.Config{
		DriveCapacity: 4 << 20,
		MaxRetries:    10,
		RetryBackoff:  20 * time.Microsecond,
		OpDeadline:    2 * time.Millisecond,
		Seed:          12,
	})
	cl := arr.Cluster()
	host := cl.HostNode
	for i := 0; i < 3; i++ {
		cl.Fabric.Connection(core.HostID, core.NodeID(i)).InjectCorruptDirection(host, 0.25)
	}
	ref := randBytes(16, 256<<10)
	if err := arr.WriteSync(0, ref); err != nil {
		t.Fatalf("write over one-way corruption: %v", err)
	}
	got, err := arr.ReadSync(0, int64(len(ref)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("one-way corruption leaked wrong bytes")
	}
	if cl.Fabric.CorruptDrops() == 0 || arr.Stats().Retries == 0 {
		t.Fatalf("injection ineffective: drops=%d retries=%d",
			cl.Fabric.CorruptDrops(), arr.Stats().Retries)
	}
}
