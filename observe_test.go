package draid_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"

	"draid"
)

// degradedRunTrace performs one full observed scenario — write, fail a
// member, degraded read — and returns the Chrome trace bytes.
func degradedRunTrace(t *testing.T) []byte {
	t.Helper()
	arr, err := draid.New(draid.Config{
		Drives: 5, ChunkSize: 16 << 10, DriveCapacity: 4 << 20, Seed: 7,
		Observe: draid.Observe{Trace: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	data := randBytes(11, 48<<10)
	if err := arr.WriteSync(0, data); err != nil {
		t.Fatal(err)
	}
	arr.FailDrive(arr.Controller().Geometry().DataDrive(0, 0))
	got, err := arr.ReadSync(0, int64(len(data)))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("degraded read: %v", err)
	}
	var buf bytes.Buffer
	if err := arr.Trace().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceDeterminism is the tentpole's load-bearing property: two runs with
// the same seed must emit byte-identical trace output.
func TestTraceDeterminism(t *testing.T) {
	a := degradedRunTrace(t)
	b := degradedRunTrace(t)
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed runs produced different traces")
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 50 {
		t.Fatalf("suspiciously small trace: %d events", len(doc.TraceEvents))
	}
	out := string(a)
	// The degraded read must be visible end to end: the stripe op, the
	// Reconstruction broadcast, and peer-to-peer parity traffic that
	// bypasses the host NIC (Peer capsules arriving at server bdevs).
	for _, want := range []string{"degraded-read", "Reconstruction", "Peer←t", "queue depth", "tx util"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q", want)
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	arr := smallArray(t, draid.Config{})
	if arr.Trace() != nil {
		t.Fatal("tracer enabled without Observe")
	}
	// The nil tracer still exports valid empty documents.
	var buf bytes.Buffer
	if err := arr.Trace().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Fatalf("nil trace export = %q", buf.String())
	}
}

// TestErrorSentinels checks the public error chain end to end: a two-failure
// RAID-5 read is a double fault, and matches every level of the chain.
func TestErrorSentinels(t *testing.T) {
	arr := smallArray(t, draid.Config{Drives: 5})
	data := randBytes(3, 32<<10)
	if err := arr.WriteSync(0, data); err != nil {
		t.Fatal(err)
	}
	geo := arr.Controller().Geometry()
	arr.FailDrive(geo.DataDrive(0, 0))
	arr.FailDrive(geo.DataDrive(0, 1))
	_, err := arr.ReadSync(0, int64(len(data)))
	if err == nil {
		t.Fatal("two-failure RAID-5 read succeeded")
	}
	for _, sentinel := range []error{draid.ErrDoubleFault, draid.ErrDegraded, draid.ErrIO} {
		if !errors.Is(err, sentinel) {
			t.Fatalf("errors.Is(%v, %v) = false", err, sentinel)
		}
	}
	if errors.Is(err, draid.ErrOutOfRange) || errors.Is(err, draid.ErrTimeout) {
		t.Fatalf("err %v matches unrelated sentinel", err)
	}
}

func TestReaderAtWriterAt(t *testing.T) {
	arr := smallArray(t, draid.Config{})
	data := randBytes(5, 96<<10)
	n, err := arr.WriteAt(data, 8<<10)
	if err != nil || n != len(data) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	got := make([]byte, len(data))
	n, err = arr.ReadAt(got, 8<<10)
	if err != nil || n != len(got) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("ReadAt round-trip mismatch")
	}

	// io.ReaderAt EOF contract at the end of the device.
	size := arr.Size()
	tail := make([]byte, 4<<10)
	if _, err := arr.ReadAt(tail, size); err != io.EOF {
		t.Fatalf("ReadAt(at size) err = %v, want io.EOF", err)
	}
	n, err = arr.ReadAt(tail, size-1024)
	if n != 1024 || err != io.EOF {
		t.Fatalf("ReadAt(partial tail) = %d, %v, want 1024, io.EOF", n, err)
	}
	// WriteAt must refuse writes extending past the device.
	if _, err := arr.WriteAt(tail, size-1024); !errors.Is(err, draid.ErrOutOfRange) {
		t.Fatalf("WriteAt past end err = %v, want ErrOutOfRange", err)
	}
	// io.SectionReader composes over the array.
	sr := io.NewSectionReader(arr, 8<<10, int64(len(data)))
	all, err := io.ReadAll(sr)
	if err != nil || !bytes.Equal(all, data) {
		t.Fatalf("SectionReader: %v", err)
	}
}
