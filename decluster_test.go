package draid_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"draid"
)

// declusteredArray builds a small declustered array: width-4 RAID-5 parity
// groups spread over 8 physical drives.
func declusteredArray(t *testing.T, cfg draid.Config) *draid.Array {
	t.Helper()
	cfg.Declustered = true
	if cfg.Drives == 0 {
		cfg.Drives = 4
	}
	if cfg.ClusterDrives == 0 {
		cfg.ClusterDrives = 8
	}
	if cfg.DriveCapacity == 0 {
		cfg.DriveCapacity = 16 << 20
	}
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = 64 << 10
	}
	arr, err := draid.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestDeclusteredRoundTrip(t *testing.T) {
	arr := declusteredArray(t, draid.Config{})
	data := randBytes(21, 300<<10)
	if err := arr.WriteSync(8<<10, data); err != nil {
		t.Fatal(err)
	}
	got, err := arr.ReadSync(8<<10, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round-trip mismatch")
	}
	if n := arr.DriveCount(); n != 8 {
		t.Fatalf("DriveCount = %d, want 8", n)
	}
}

func TestDeclusteredDegradedReadAndRebuild(t *testing.T) {
	arr := declusteredArray(t, draid.Config{Integrity: true})
	data := randBytes(22, 512<<10)
	if err := arr.WriteSync(0, data); err != nil {
		t.Fatal(err)
	}
	arr.FailDrive(3)
	got, err := arr.ReadSync(0, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read mismatch")
	}
	// Many-to-many rebuild: chunks relocate into distributed spare slots,
	// the drive is retired, and redundancy is restored without a spare
	// endpoint.
	if err := arr.RebuildDrive(3, 0); err != nil {
		t.Fatal(err)
	}
	// A second, different failure must now be survivable.
	arr.FailDrive(5)
	got, err = arr.ReadSync(0, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read after rebuild + second failure mismatch")
	}
	if err := arr.RebuildDrive(5, 0); err != nil {
		t.Fatal(err)
	}
	st, err := arr.ScrubNow()
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 0 || st.ParityRepairs != 0 || st.MediaRepairs != 0 {
		t.Fatalf("post-rebuild scrub not clean: %+v", st)
	}
}

func TestDeclusteredAddDriveRebalances(t *testing.T) {
	arr := declusteredArray(t, draid.Config{Spares: 2, Integrity: true})
	data := randBytes(23, 768<<10)
	if err := arr.WriteSync(0, data); err != nil {
		t.Fatal(err)
	}
	idx, err := arr.AddDrive()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 8 {
		t.Fatalf("new drive index = %d, want 8", idx)
	}
	if err := arr.WaitRebalance(); err != nil {
		t.Fatal(err)
	}
	st := arr.CurrentRebalance()
	if st.Active {
		t.Fatal("rebalance still active after WaitRebalance")
	}
	if st.Done == 0 || st.Done != st.Total {
		t.Fatalf("rebalance did %d/%d moves", st.Done, st.Total)
	}
	if n := arr.DriveCount(); n != 9 {
		t.Fatalf("DriveCount = %d, want 9", n)
	}
	got, err := arr.ReadSync(0, int64(len(data)))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after rebalance: %v", err)
	}
	scrub, err := arr.ScrubNow()
	if err != nil {
		t.Fatal(err)
	}
	if scrub.Errors != 0 || scrub.ParityRepairs != 0 || scrub.MediaRepairs != 0 {
		t.Fatalf("post-rebalance scrub not clean: %+v", scrub)
	}
}

func TestDeclusteredRemoveDriveDrains(t *testing.T) {
	arr := declusteredArray(t, draid.Config{Spares: 1, Integrity: true})
	data := randBytes(24, 512<<10)
	if err := arr.WriteSync(0, data); err != nil {
		t.Fatal(err)
	}
	if err := arr.RemoveDrive(2); err != nil {
		t.Fatal(err)
	}
	if err := arr.WaitRebalance(); err != nil {
		t.Fatal(err)
	}
	st := arr.CurrentRebalance()
	if !st.Drain || st.Done != st.Total {
		t.Fatalf("drain did %d/%d moves (drain=%v)", st.Done, st.Total, st.Drain)
	}
	got, err := arr.ReadSync(0, int64(len(data)))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after drain: %v", err)
	}
	// The drained drive holds nothing: failing it must not degrade reads.
	arr.FailDrive(2)
	arr.FailDrive(6)
	got, err = arr.ReadSync(0, int64(len(data)))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read with drained+one failed drive: %v", err)
	}
}

func TestDeclusteredSupervisedRebuild(t *testing.T) {
	// With health detection on, a crashed drive is detected and rebuilt
	// many-to-many with no spare endpoint consumed.
	arr := declusteredArray(t, draid.Config{
		Spares: 1,
		Health: draid.HealthConfig{Detect: true, FailAfter: 2},
	})
	data := randBytes(25, 512<<10)
	if err := arr.WriteSync(0, data); err != nil {
		t.Fatal(err)
	}
	before := arr.SparesAvailable()
	arr.CrashDrive(4)
	arr.RunFor(50 * time.Millisecond) // heartbeats notice; rebuild relocates chunks
	if st := arr.RebuildStatus(); st.Active || st.DoneStripes != st.TotalStripes || st.TotalStripes == 0 {
		t.Fatalf("declustered rebuild incomplete: %+v", st)
	}
	if got := arr.SparesAvailable(); got != before {
		t.Fatalf("declustered rebuild consumed a spare endpoint (%d → %d)", before, got)
	}
	arr.FailDrive(1)
	got, err := arr.ReadSync(0, int64(len(data)))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after supervised rebuild + second failure: %v", err)
	}
}

func TestDeclusteredConfigValidation(t *testing.T) {
	if _, err := draid.New(draid.Config{Drives: 4, ClusterDrives: 8}); err == nil {
		t.Fatal("ClusterDrives without Declustered accepted")
	}
	if _, err := draid.New(draid.Config{Declustered: true, Drives: 4, ClusterDrives: 4}); err == nil {
		t.Fatal("declustered with ClusterDrives == Drives accepted")
	}
	arr := smallArray(t, draid.Config{})
	if _, err := arr.AddDrive(); !errors.Is(err, draid.ErrUnsupported) {
		t.Fatalf("AddDrive on fixed array = %v, want ErrUnsupported", err)
	}
}

func TestPoolNoCapacityError(t *testing.T) {
	p, err := draid.NewPool(draid.PoolConfig{Drives: 5, DriveCapacity: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.OpenVolume(draid.VolumeConfig{Extent: 3 << 20}); err != nil {
		t.Fatal(err)
	}
	_, err = p.OpenVolume(draid.VolumeConfig{Extent: 3 << 20})
	if !errors.Is(err, draid.ErrNoCapacity) {
		t.Fatalf("overcommitted OpenVolume = %v, want ErrNoCapacity", err)
	}
}

func TestPoolAddDriveGrowsDeclusteredVolumes(t *testing.T) {
	p, err := draid.NewPool(draid.PoolConfig{Drives: 7, DriveCapacity: 16 << 20, Spares: 1})
	if err != nil {
		t.Fatal(err)
	}
	decl, err := p.OpenVolume(draid.VolumeConfig{
		Name: "decl", Drives: 4, Declustered: true, ChunkSize: 64 << 10, Extent: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := p.OpenVolume(draid.VolumeConfig{
		Name: "fixed", Drives: 5, ChunkSize: 64 << 10, Extent: 4 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	dData := randBytes(26, 512<<10)
	fData := randBytes(27, 256<<10)
	if err := decl.WriteSync(0, dData); err != nil {
		t.Fatal(err)
	}
	if err := fixed.WriteSync(0, fData); err != nil {
		t.Fatal(err)
	}
	idx, err := p.AddDrive()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 7 {
		t.Fatalf("new drive index = %d, want 7", idx)
	}
	if err := p.WaitRebalance(); err != nil {
		t.Fatal(err)
	}
	if n := decl.DriveCount(); n != 8 {
		t.Fatalf("declustered volume sees %d drives, want 8", n)
	}
	if n := fixed.DriveCount(); n != 5 {
		t.Fatalf("fixed volume sees %d drives, want 5", n)
	}
	got, err := decl.ReadSync(0, int64(len(dData)))
	if err != nil || !bytes.Equal(got, dData) {
		t.Fatalf("declustered read after pool expansion: %v", err)
	}
	got, err = fixed.ReadSync(0, int64(len(fData)))
	if err != nil || !bytes.Equal(got, fData) {
		t.Fatalf("fixed read after pool expansion: %v", err)
	}
}

// TestDeclusterTortureRebalance races an AddDrive rebalance against
// foreground writes, write-back destage, and a concurrent drive failure
// (whose many-to-many rebuild runs alongside the rebalance). Every
// acknowledged write must survive to the final model check and parity must
// be sound after convergence.
func TestDeclusterTortureRebalance(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			arr, err := draid.New(draid.Config{
				Declustered: true, Drives: 4, ClusterDrives: 8,
				ChunkSize: 16 << 10, DriveCapacity: 1 << 20, Seed: seed,
				Spares: 1, Integrity: true,
				WriteBack: true, StageMB: 1, DestageIntervalMs: 1,
				RebuildRateMBps: 400, // keep the migrations in flight across iterations
			})
			if err != nil {
				t.Fatal(err)
			}
			size := arr.Size()
			model := randBytes(seed+60, int(size))
			if err := arr.WriteSync(0, model); err != nil {
				t.Fatal(err)
			}

			if _, err := arr.AddDrive(); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed * 131))
			acks := 0
			pending := 0
			failed := -1
			for iter := 0; iter < 50; iter++ {
				// Async acknowledged writes at disjoint offsets interleave
				// with the paced migrations instead of draining them.
				wLen := int64(1+rng.Intn(24)) << 10
				wOff := (int64(iter) * size / 50) % (size - wLen)
				data := make([]byte, wLen)
				rng.Read(data)
				pending++
				arr.Write(wOff, data, func(err error) {
					if err != nil {
						t.Errorf("iter write ack: %v", err)
					}
					acks++
					pending--
				})
				copy(model[wOff:], data)
				if iter == 20 {
					// Concurrent drive failure mid-rebalance: the supervisor's
					// declustered rebuild runs alongside the fill.
					failed = rng.Intn(8)
					arr.FailDrive(failed)
				}
				arr.RunFor(150 * time.Microsecond)
			}
			arr.Run()
			if pending != 0 || acks != 50 {
				t.Fatalf("lost acks: %d acked, %d still pending", acks, pending)
			}
			if err := arr.WaitRebalance(); err != nil {
				t.Fatal(err)
			}
			if st := arr.CurrentRebalance(); st.Active || st.Done+st.Skipped != st.Total {
				t.Fatalf("rebalance did not converge: %+v", st)
			}
			if rb := arr.RebuildStatus(); rb.Active {
				t.Fatalf("rebuild still active after Run: %+v", rb)
			}
			if err := arr.Flush(); err != nil {
				t.Fatal(err)
			}
			got, err := arr.ReadSync(0, size)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, model) {
				t.Fatal("device diverged from model — acknowledged writes lost")
			}
			// Parity soundness after convergence: a clean scrub, then a
			// further failure must still reconstruct everything.
			st, err := arr.ScrubNow()
			if err != nil {
				t.Fatal(err)
			}
			if st.Errors != 0 || st.ParityRepairs != 0 || st.MediaRepairs != 0 {
				t.Fatalf("post-convergence scrub not clean: %+v", st)
			}
			probe := failed
			for probe == failed || probe < 0 {
				probe = rng.Intn(9)
			}
			arr.FailDrive(probe)
			got, err = arr.ReadSync(0, size)
			if err != nil || !bytes.Equal(got, model) {
				t.Fatalf("post-convergence degraded read: %v", err)
			}
		})
	}
}

// TestAddDriveLiveTrafficP99 is the online-expansion acceptance check: with
// the rebalance paced by the rebuild rate budget, foreground p99 during the
// migration stays within 2x its pre-rebalance value, the rebalance
// converges, and the post-rebalance scrub is clean.
func TestAddDriveLiveTrafficP99(t *testing.T) {
	arr := declusteredArray(t, draid.Config{
		Spares: 1, Integrity: true, Seed: 5,
		RebuildRateMBps: 100,
	})
	if err := arr.WriteSync(0, randBytes(31, int(arr.Size()))); err != nil {
		t.Fatal(err)
	}
	spec := draid.BenchmarkSpec{
		IOSizeBytes: 32 << 10, QueueDepth: 8, ReadRatio: 0.7,
		Ramp: 5 * time.Millisecond, Measure: 15 * time.Millisecond,
	}
	before := arr.Benchmark(spec)
	if _, err := arr.AddDrive(); err != nil {
		t.Fatal(err)
	}
	during := arr.Benchmark(spec)
	if st := arr.CurrentRebalance(); !st.Active {
		t.Fatalf("rebalance finished before the measurement window: %+v", st)
	}
	if lim := 2 * before.P99Latency; during.P99Latency > lim {
		t.Fatalf("foreground p99 under rebalance = %v, want <= 2x baseline (%v)",
			during.P99Latency, before.P99Latency)
	}
	if err := arr.WaitRebalance(); err != nil {
		t.Fatal(err)
	}
	st, err := arr.ScrubNow()
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 0 || st.ParityRepairs != 0 || st.MediaRepairs != 0 {
		t.Fatalf("post-rebalance scrub not clean: %+v", st)
	}
}
