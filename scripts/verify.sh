#!/bin/sh
# Full verification recipe (ROADMAP.md "Verify"): build, vet, tests, race.
# Tier-1 is the first two commands; the race pass is slower but catches
# callback-ordering bugs the single-goroutine engine can mask in -race-free
# builds of the test harness itself.
#
# FULL=1 additionally runs the fault-injection torture suites (mid-run
# crashes, automatic detection, hot-spare rebuild, host failover) under
# -race across their multi-seed tables — see `make torture` — plus a
# single-iteration smoke pass over the kernel/harness benchmarks so a
# benchmark that panics or regresses to non-compiling is caught here.
set -eux
cd "$(dirname "$0")/.."

go build ./...
go test ./...
go vet ./...
go test -race ./...
# Scrubber smoke under -race: background passes + repair-on-read are the
# most callback-ordering-sensitive paths added by the integrity layer.
go test -race -run '^TestScrub' . -count=1
# Realtime-backend smoke: the cross-backend conformance suite under -race
# (real goroutine schedules, channel and TCP transports, file media), plus
# a short draid-fio run on each realtime transport.
go test -race -count=1 ./internal/backend/...
go run ./cmd/draid-fio -backend realtime -iosize 131072 -qd 8 -ramp 10ms -measure 40ms
go run ./cmd/draid-fio -backend realtime -rt-tcp -iosize 65536 -qd 8 -ramp 10ms -measure 40ms
# Declustered-placement smoke: rebuild + online expansion under -race, plus
# the decluster figure (quick sim sweep) with its machine-checked
# rebuild-shrinks-with-cluster-size expectations.
go test -race -run 'TestDeclustered|TestAddDriveLiveTrafficP99|TestPoolAddDrive' . -count=1
go run ./cmd/draid-bench -fig decluster -quick
# Membership chaos smoke: a small deterministic fault sweep (partition at
# every step of a short write-back workload) plus the teeth pass — with
# epoch enforcement injected off the same sweep must DETECT the zombie's
# stale-destage corruption (draid-chaos inverts its exit code under -teeth).
go run ./cmd/draid-chaos -seeds 2 -steps 4 -wb
go run ./cmd/draid-chaos -seeds 2 -steps 4 -wb -teeth

if [ "${FULL:-0}" = "1" ]; then
    make torture
    go test -run '^$' -bench . -benchtime 1x ./internal/gf256 ./internal/parity .
    # Grey-failure smoke: hedged reads against an injected slow drive on the
    # sim and realtime backends, plus the greyfail figure in quick mode.
    go run ./cmd/draid-fio -hedge adaptive-p95 -slow 2=const:10 -ratio 1 -qd 16 -ramp 10ms -measure 40ms
    go run ./cmd/draid-fio -backend realtime -hedge fixed-delay -hedge-delay 2ms -slow '2=const:20' -ratio 1 -qd 16 -ramp 10ms -measure 40ms
    go run ./cmd/draid-bench -fig greyfail -quick -ramp 10ms -measure 40ms
    go run ./cmd/draid-bench -backend realtime -fig greyfail -ramp 10ms -measure 40ms
    # Write-back staging smoke: staged small writes on both backends, plus
    # the writeback amplification figure (quick sim sweep + realtime run)
    # with its machine-checked ≤1.3×-staged vs ≥2×-unstaged expectations.
    go run ./cmd/draid-fio -writeback -stage-mb 4 -cache-mb 2 -iosize 16384 -qd 16 -ramp 10ms -measure 40ms
    go run ./cmd/draid-fio -backend realtime -writeback -iosize 16384 -qd 16 -ramp 10ms -measure 40ms
    go run ./cmd/draid-bench -fig writeback -quick -ramp 10ms -measure 40ms
    go run ./cmd/draid-bench -backend realtime -fig writeback -ramp 10ms -measure 40ms
    # Declustered placement at full sweep: the rebuild-vs-cluster-size
    # figure on sim (all cluster sizes) and realtime (endpoints).
    go run ./cmd/draid-bench -fig decluster -parallel 4
    go run ./cmd/draid-bench -backend realtime -fig decluster
    # Membership chaos at full budget: every fault kind × 8 seeds × 6 steps
    # across fixed/declustered layouts with write-back on and off (sim), a
    # bounded sweep on both realtime transports (wall clocks), and the
    # teeth pass on both layouts.
    make chaos
    go run ./cmd/draid-chaos -declustered
    go run ./cmd/draid-chaos -declustered -wb -teeth
    go run ./cmd/draid-chaos -backend realtime -wb -seeds 2 -steps 3 -faults partition
    go run ./cmd/draid-chaos -backend realtime -tcp -seeds 1 -steps 2 -faults partition
fi
