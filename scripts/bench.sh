#!/bin/sh
# Kernel + harness benchmark runner.
#
# Runs the gf256 kernel microbenchmarks (vectorized and -scalar reference
# variants at 4KB/64KB/512KB), the parity pool benchmarks, and the
# harness-level BenchmarkFigAllQuick serial-vs-parallel comparison, with
# allocation counts. Raw output lands in bench.out; curated before/after
# numbers are recorded in BENCH_kernels.json.
#
#   ./scripts/bench.sh              # full pass (~minutes)
#   COUNT=5 ./scripts/bench.sh     # more repetitions for stable numbers
set -eux
cd "$(dirname "$0")/.."

COUNT="${COUNT:-1}"
OUT="${OUT:-bench.out}"

: > "$OUT"

# Vectorized kernels vs their scalar references.
go test -run '^$' -bench 'XORSlice|MulSlice|MulAddSlice|SyndromePQ' \
    -benchmem -count "$COUNT" ./internal/gf256 | tee -a "$OUT"

# Buffer-pool and parity-path allocation behaviour.
go test -run '^$' -bench . -benchmem -count "$COUNT" ./internal/parity | tee -a "$OUT"

# Harness: full figure batch, serial vs parallel workers.
go test -run '^$' -bench 'FigAllQuick' -benchmem -count "$COUNT" . | tee -a "$OUT"

# Grey-failure sweep: read p99/p999 per hedging policy under a 10x-slow
# member, sim + realtime. Curated numbers live in BENCH_greyfail.json.
go run ./cmd/draid-bench -fig greyfail -parallel 4 | tee -a "$OUT"
go run ./cmd/draid-bench -backend realtime -fig greyfail | tee -a "$OUT"

# Write-back staging sweep: small-write drive amplification and write
# latency, staged vs unstaged, per I/O size, sim + realtime. Curated
# numbers live in BENCH_writeback.json.
go run ./cmd/draid-bench -fig writeback -parallel 4 | tee -a "$OUT"
go run ./cmd/draid-bench -backend realtime -fig writeback | tee -a "$OUT"

# Declustered placement sweep: rebuild rate and duration vs cluster size,
# fixed vs declustered, sim + realtime. Curated numbers live in
# BENCH_decluster.json.
go run ./cmd/draid-bench -fig decluster -parallel 4 | tee -a "$OUT"
go run ./cmd/draid-bench -backend realtime -fig decluster | tee -a "$OUT"
