package draid_test

import (
	"bytes"
	"testing"
	"time"

	"draid"
	"draid/internal/experiments"
	"draid/internal/sim"
)

// newTestPool builds a small two-tenant-capable pool: tiny drives so
// rebuilds finish fast, deterministic seed.
func newTestPool(t *testing.T, cfg draid.PoolConfig) *draid.Pool {
	t.Helper()
	if cfg.Drives == 0 {
		cfg.Drives = 6
	}
	if cfg.DriveCapacity == 0 {
		cfg.DriveCapacity = 1 << 20
	}
	p, err := draid.NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func pattern(n int, mul byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i) * mul
	}
	return b
}

func TestTwoVolumeTrafficSumsToAggregate(t *testing.T) {
	p := newTestPool(t, draid.PoolConfig{})
	a, err := p.OpenVolume(draid.VolumeConfig{Name: "a", ChunkSize: 64 << 10, Extent: 512 << 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.OpenVolume(draid.VolumeConfig{Name: "b", ChunkSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}

	// Interleave work from both tenants on the shared clock.
	var errA, errB error
	a.Write(0, pattern(256<<10, 3), func(e error) { errA = e })
	b.Write(64<<10, pattern(96<<10, 5), func(e error) { errB = e })
	p.Run()
	if errA != nil || errB != nil {
		t.Fatalf("writes failed: %v, %v", errA, errB)
	}

	aOut, aIn := a.HostTraffic()
	bOut, bIn := b.HostTraffic()
	totOut, totIn := p.TotalHostTraffic()
	if aOut == 0 || bOut == 0 {
		t.Fatal("per-volume attribution recorded nothing")
	}
	if aOut+bOut != totOut || aIn+bIn != totIn {
		t.Fatalf("volume traffic does not sum to aggregate: (%d+%d, %d+%d) != (%d, %d)",
			aOut, bOut, aIn, bIn, totOut, totIn)
	}

	p.ResetTraffic()
	aOut, aIn = a.HostTraffic()
	totOut, totIn = p.TotalHostTraffic()
	if aOut != 0 || aIn != 0 || totOut != 0 || totIn != 0 {
		t.Fatal("ResetTraffic left residue")
	}
}

func TestMixedLevelsSharedDrivesDegradedReads(t *testing.T) {
	p := newTestPool(t, draid.PoolConfig{})
	r5, err := p.OpenVolume(draid.VolumeConfig{Name: "r5", Level: draid.Raid5, ChunkSize: 64 << 10, Extent: 512 << 10})
	if err != nil {
		t.Fatal(err)
	}
	r6, err := p.OpenVolume(draid.VolumeConfig{Name: "r6", Level: draid.Raid6, ChunkSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}

	want5 := pattern(256<<10, 7)
	want6 := pattern(192<<10, 11)
	if err := r5.WriteSync(0, want5); err != nil {
		t.Fatal(err)
	}
	if err := r6.WriteSync(0, want6); err != nil {
		t.Fatal(err)
	}

	// One physical drive failure degrades both tenants at once.
	p.FailDrive(2)

	got5, err := r5.ReadSync(0, int64(len(want5)))
	if err != nil {
		t.Fatalf("raid5 degraded read: %v", err)
	}
	if !bytes.Equal(got5, want5) {
		t.Fatal("raid5 degraded read returned wrong data")
	}
	got6, err := r6.ReadSync(0, int64(len(want6)))
	if err != nil {
		t.Fatalf("raid6 degraded read: %v", err)
	}
	if !bytes.Equal(got6, want6) {
		t.Fatal("raid6 degraded read returned wrong data")
	}
	if r5.Stats().DegradedReads == 0 || r6.Stats().DegradedReads == 0 {
		t.Fatalf("expected degraded reads on both volumes: r5=%d r6=%d",
			r5.Stats().DegradedReads, r6.Stats().DegradedReads)
	}
}

func TestSharedSpareFirstClaimArbitration(t *testing.T) {
	p := newTestPool(t, draid.PoolConfig{Spares: 1})
	a, err := p.OpenVolume(draid.VolumeConfig{Name: "a", ChunkSize: 64 << 10, Extent: 512 << 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.OpenVolume(draid.VolumeConfig{Name: "b", ChunkSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteSync(0, pattern(128<<10, 3)); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteSync(0, pattern(128<<10, 5)); err != nil {
		t.Fatal(err)
	}
	if p.SparesAvailable() != 1 {
		t.Fatalf("spares available = %d, want 1", p.SparesAvailable())
	}

	// One shared-drive failure degrades both volumes; their supervisors race
	// for the single spare. Volume a is notified first and wins the claim;
	// b stays queued, degraded.
	p.FailDrive(1)
	p.Run()

	if p.SparesAvailable() != 0 {
		t.Fatalf("spare not claimed: %d available", p.SparesAvailable())
	}
	doneA, doneB := 0, 0
	for _, e := range a.RecoveryEvents() {
		if e.Kind == "rebuild-done" {
			doneA++
		}
	}
	for _, e := range b.RecoveryEvents() {
		if e.Kind == "rebuild-done" {
			doneB++
		}
	}
	if doneA != 1 {
		t.Fatalf("winner rebuilt %d times, want 1\nevents: %v", doneA, a.RecoveryEvents())
	}
	if doneB != 0 {
		t.Fatalf("loser should stay queued, rebuilt %d times", doneB)
	}
	if len(a.FailedDrives()) != 0 {
		t.Fatalf("winner still degraded: %v", a.FailedDrives())
	}
	if len(b.FailedDrives()) == 0 {
		t.Fatal("loser should still be degraded")
	}
	// The loser's data stays reachable through reconstruction.
	got, err := b.ReadSync(0, 128<<10)
	if err != nil {
		t.Fatalf("loser degraded read: %v", err)
	}
	if !bytes.Equal(got, pattern(128<<10, 5)) {
		t.Fatal("loser degraded read returned wrong data")
	}
}

func TestSharedRebuildRateLimiterArbitrates(t *testing.T) {
	// Two spares, shared rebuild budget: both volumes rebuild concurrently
	// and must split the configured rate rather than each claiming it in
	// full — so the pair takes roughly twice as long as a lone rebuild at
	// the same rate.
	elapsed := func(spares int, openBoth bool) time.Duration {
		p := newTestPool(t, draid.PoolConfig{Spares: spares, RebuildRateMBps: 50})
		a, err := p.OpenVolume(draid.VolumeConfig{Name: "a", ChunkSize: 64 << 10, Extent: 256 << 10})
		if err != nil {
			t.Fatal(err)
		}
		vols := []*draid.Array{a}
		if openBoth {
			b, err := p.OpenVolume(draid.VolumeConfig{Name: "b", ChunkSize: 64 << 10, Extent: 256 << 10})
			if err != nil {
				t.Fatal(err)
			}
			vols = append(vols, b)
		}
		for i, v := range vols {
			if err := v.WriteSync(0, pattern(64<<10, byte(3+i))); err != nil {
				t.Fatal(err)
			}
		}
		start := p.Now()
		p.FailDrive(1)
		p.Run()
		for _, v := range vols {
			if len(v.FailedDrives()) != 0 {
				t.Fatalf("rebuild incomplete: %v", v.FailedDrives())
			}
		}
		return p.Now() - start
	}

	solo := elapsed(1, false)
	both := elapsed(2, true)
	if both < solo*3/2 {
		t.Fatalf("shared limiter not arbitrating: solo=%v both=%v", solo, both)
	}
}

func TestMultivolExperimentDeterministic(t *testing.T) {
	opts := experiments.Options{Quick: true, Seed: 5, Ramp: sim.Millisecond, Measure: 5 * sim.Millisecond}
	r1, err := experiments.Run("multivol-noisy", opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := experiments.Run("multivol-noisy", opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("multivol-noisy not deterministic across runs")
	}
	if r1 == "" {
		t.Fatal("empty report")
	}
}
