package draid

import (
	"fmt"
	"time"

	"draid/internal/cluster"
	"draid/internal/core"
	"draid/internal/placement"
	"draid/internal/raid"
	"draid/internal/recon"
	"draid/internal/repair"
	"draid/internal/sim"
	"draid/internal/ssd"
)

// PoolConfig describes a shared cluster: drives, NICs, cores, and hot
// spares that several volumes divide among themselves. It carries the
// physical-substrate half of Config; the per-volume half (level, width,
// chunk size) moves to VolumeConfig.
type PoolConfig struct {
	// Drives is the number of shared member drives (default 8). Every
	// volume stripes over a prefix of these; a volume's width may not
	// exceed it.
	Drives int
	// DriveCapacity overrides the per-drive capacity (default 1.6 TB).
	// Volumes carve disjoint extents out of each drive until it is full.
	DriveCapacity int64
	// HostNICGbps and TargetNICGbps set line rates (default 100).
	// TargetNICGbpsList overrides per-target rates.
	HostNICGbps       float64
	TargetNICGbps     float64
	TargetNICGbpsList []float64
	// DrivesPerServer co-locates several member drives on one physical
	// storage server (§5.5). Default 1.
	DrivesPerServer int
	// SizeOnly runs the data plane without materializing payload bytes.
	SizeOnly bool
	// Seed drives all randomness (default 1).
	Seed int64
	// Observe configures the tracing and metrics subsystem (shared by all
	// volumes; volume 0 owns the bare "host" tracks, others get "host/vN").
	Observe Observe
	// Spares provisions hot-spare servers shared by every volume's rebuild
	// supervisor, first claim wins.
	Spares int
	// RebuildRateMBps is a shared token-bucket budget for reconstruction
	// bytes: concurrent rebuilds across volumes split this rate instead of
	// each claiming it in full. 0 means unthrottled.
	RebuildRateMBps float64
	// QoSWindowBytes enables the shared per-volume fair scheduler: user I/O
	// from every volume is admitted through weighted fair queuing over this
	// many in-flight bytes, bounding how deeply a noisy neighbor can bury a
	// victim's requests in device queues. 0 disables QoS (the default);
	// negative selects the 4 MiB default window. Per-volume weights come
	// from VolumeConfig.QoSWeight.
	QoSWindowBytes int64
}

// Pool is a shared cluster plus the arbitration state volumes contend on
// (spare pool, rebuild-rate budget). Open volumes with OpenVolume; all
// volumes share one virtual clock, advanced by any volume's *Sync methods
// or by Pool.Run.
type Pool struct {
	cl      *cluster.Cluster
	cfg     PoolConfig
	limiter *repair.RateLimiter
	arrays  []*Array
	// pending lists the volumes whose layouts the last AddDrive/RemoveDrive
	// is still migrating; WaitRebalance drains it.
	pending []*Array
}

// NewPool assembles the shared testbed.
func NewPool(cfg PoolConfig) (*Pool, error) {
	if cfg.Drives == 0 {
		cfg.Drives = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	spec := cluster.DefaultSpec()
	spec.Targets = cfg.Drives
	spec.Spares = cfg.Spares
	spec.Seed = cfg.Seed
	spec.Elide = cfg.SizeOnly
	if cfg.HostNICGbps != 0 {
		spec.HostGbps = cfg.HostNICGbps
	}
	if cfg.TargetNICGbps != 0 {
		spec.TargetGbps = cfg.TargetNICGbps
	}
	spec.TargetGbpsList = cfg.TargetNICGbpsList
	spec.BdevsPerServer = cfg.DrivesPerServer
	spec.Observe = cfg.Observe.Trace
	spec.SampleEvery = sim.Duration(cfg.Observe.SampleEvery)
	if cfg.DriveCapacity != 0 {
		drv := ssd.DefaultSpec()
		drv.Capacity = cfg.DriveCapacity
		drv.StoreData = !cfg.SizeOnly
		spec.Drive = &drv
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := &Pool{cl: cluster.New(spec), cfg: cfg}
	if cfg.RebuildRateMBps > 0 {
		p.limiter = repair.NewRateLimiter(p.cl.Rt, cfg.RebuildRateMBps)
	}
	if cfg.QoSWindowBytes != 0 {
		window := cfg.QoSWindowBytes
		if window < 0 {
			window = 0 // core.NewQoS defaults it
		}
		p.cl.EnableQoS(window)
	}
	return p, nil
}

// VolumeConfig describes one virtual array on a shared pool.
type VolumeConfig struct {
	// Name labels the volume in the registry (default "volN").
	Name string
	// Level is the RAID level (default Raid5).
	Level Level
	// Drives is the stripe width (default: the pool's drive count). A
	// narrower volume stripes over members 0..Drives-1 — unless Declustered
	// is set, in which case the width-Drives parity groups spread over every
	// pool drive.
	Drives int
	// Declustered spreads this volume's stripes across all pool drives with
	// seeded parity declustering instead of pinning them to a contiguous
	// member window: rebuild becomes many-to-many (shrinking as the pool
	// grows) and the volume follows Pool.AddDrive/RemoveDrive expansions.
	// Requires a stripe width (Drives) strictly below the pool's drive
	// count, so every row keeps distributed spare slots.
	Declustered bool
	// ChunkSize is the stripe chunk size (default 512 KB).
	ChunkSize int64
	// Extent is the volume's slice of every member drive in bytes; 0 claims
	// all remaining capacity (so the last volume takes the rest).
	Extent int64
	// ReducerPolicy selects degraded-read reducer placement.
	ReducerPolicy ReducerPolicy
	// Hedge tunes hedged reads against slow members (see HedgeConfig).
	Hedge HedgeConfig
	// QoSWeight is this volume's share weight under the pool's QoS
	// scheduler (default 1; larger is more; ignored without
	// PoolConfig.QoSWindowBytes).
	QoSWeight float64
	// Health configures automatic failure detection for this volume.
	Health HealthConfig
	// WriteBack / StageMB / CacheMB / DestageIntervalMs as in Config: this
	// volume's write-back staging layer, accounted per volume.
	WriteBack         bool
	StageMB           int
	CacheMB           int
	DestageIntervalMs int
	// EpochFencing / HostLease as in Config: membership epochs and the
	// lease watchdog for this volume's controller, granted from the shared
	// cluster's per-volume epoch registry.
	EpochFencing bool
	HostLease    time.Duration
	// MaxRetries / RetryBackoff / OpDeadline as in Config.
	MaxRetries   int
	RetryBackoff time.Duration
	OpDeadline   time.Duration
}

// OpenVolume registers a new volume on the pool and returns it as an Array.
// The array shares the pool's engine, drives, NICs, and spares with its
// co-tenants; HostTraffic reports only this volume's share of the host NIC.
func (p *Pool) OpenVolume(cfg VolumeConfig) (*Array, error) {
	if cfg.Level == 0 {
		cfg.Level = Raid5
	}
	if cfg.Drives == 0 {
		cfg.Drives = p.cfg.Drives
	}
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = 512 << 10
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("vol%d", len(p.cl.Volumes()))
	}
	if cfg.Declustered && cfg.Drives >= p.cfg.Drives {
		return nil, fmt.Errorf("draid: declustered volume %q needs width (%d) below the pool's drive count (%d)",
			cfg.Name, cfg.Drives, p.cfg.Drives)
	}
	geo := raid.Geometry{Level: cfg.Level, Width: cfg.Drives, ChunkSize: cfg.ChunkSize}
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	hostCfg := core.Config{
		Geometry:     geo,
		MaxRetries:   cfg.MaxRetries,
		RetryBackoff: sim.Duration(cfg.RetryBackoff),
		Deadline:     sim.Duration(cfg.OpDeadline),
		Hedge:        cfg.Hedge.toCore(),
		QoSWeight:    cfg.QoSWeight,
	}
	Config{WriteBack: cfg.WriteBack, StageMB: cfg.StageMB, CacheMB: cfg.CacheMB,
		DestageIntervalMs: cfg.DestageIntervalMs}.applyWriteBack(&hostCfg)
	if cfg.Declustered {
		width, drives, chunk, seed := cfg.Drives, p.cfg.Drives, cfg.ChunkSize, p.cfg.Seed
		hostCfg.LayoutFor = func(base, extent int64) placement.Layout {
			l, err := placement.NewDeclustered(base, extent, chunk, width, drives, seed)
			if err != nil {
				panic(err.Error()) // width/drive preconditions checked above
			}
			return l
		}
	}
	switch cfg.ReducerPolicy {
	case ReducerRandom:
	case ReducerFixed:
		hostCfg.Selector = recon.FixedSelector{}
	case ReducerBWAware:
		tr := recon.NewBandwidthTracker(p.cl.Eng, targetNICs(p.cl), 2*sim.Millisecond)
		hostCfg.Selector = &recon.BWAwareSelector{Rng: p.cl.Eng.Rand(), Tracker: tr, Fanout: cfg.Drives - 2}
	default:
		return nil, fmt.Errorf("draid: unknown reducer policy %v", cfg.ReducerPolicy)
	}
	if cfg.HostLease < 0 || (cfg.HostLease > 0 && !cfg.EpochFencing) {
		return nil, fmt.Errorf("draid: HostLease requires EpochFencing (renewal validates the epoch)")
	}
	if cfg.EpochFencing {
		// The registry assigns the next VolumeID sequentially, so the grant
		// can name it before AddVolume runs.
		grantEpoch(p.cl, core.VolumeID(len(p.cl.Volumes())), &hostCfg, sim.Duration(cfg.HostLease))
	}
	vol, err := p.cl.AddVolume(cfg.Name, cfg.Extent, hostCfg)
	if err != nil {
		return nil, err
	}
	arr := &Array{
		cl: p.cl, host: vol.Host, dev: vol.Host,
		clientNode: p.cl.HostNode, hostCfg: vol.Cfg, vol: vol,
	}
	if p.cfg.Spares > 0 || cfg.Health.Detect {
		det := repair.DetectorConfig{
			FailAfter:        cfg.Health.FailAfter,
			HeartbeatTimeout: sim.Duration(cfg.Health.HeartbeatTimeout),
			Grace:            sim.Duration(cfg.Health.Grace),
			DegradeAfter:     cfg.Health.DegradeAfter,
			EvictAfter:       cfg.Health.EvictAfter,
		}
		if cfg.Health.Detect {
			det.HeartbeatEvery = sim.Duration(cfg.Health.HeartbeatEvery)
			if det.HeartbeatEvery <= 0 {
				det.HeartbeatEvery = 10 * sim.Millisecond
			}
		}
		arr.sup = repair.NewSupervisor(p.cl.Rt, vol.Host, repair.Config{
			Detector: det,
			Rebuild:  repair.RebuilderConfig{RateMBps: p.cfg.RebuildRateMBps, Limiter: p.limiter},
			Pool:     p.cl.Spares,
		}, p.cl.Tracer)
		if cfg.Health.Detect {
			arr.sup.Start()
		}
	}
	p.arrays = append(p.arrays, arr)
	return arr, nil
}

// Volumes returns the pool's open volumes as Arrays were created, by name
// and ID order.
func (p *Pool) Volumes() []*cluster.Volume { return p.cl.Volumes() }

// Cluster exposes the shared testbed for fault injection and inspection.
func (p *Pool) Cluster() *cluster.Cluster { return p.cl }

// Run advances the shared virtual clock until all volumes' outstanding
// work completes.
func (p *Pool) Run() { p.cl.Eng.Run() }

// RunFor advances the shared virtual clock by d.
func (p *Pool) RunFor(d time.Duration) { p.cl.Eng.RunFor(sim.Duration(d)) }

// Now returns the current virtual time.
func (p *Pool) Now() time.Duration { return time.Duration(p.cl.Eng.Now()) }

// FailDrive takes shared drive i offline for every volume striped over it
// and notifies each affected volume's controller and supervisor — one
// physical fault degrading N tenants at once.
func (p *Pool) FailDrive(i int) {
	p.cl.FailTarget(i)
	for _, a := range p.arrays {
		if i < a.host.Drives() {
			a.host.SetFailed(i, true)
			if a.sup != nil {
				a.sup.NotifyFailed(i)
			}
		}
	}
}

// AddDrive grows the pool by one drive: it claims an idle hot-spare
// endpoint (PoolConfig.Spares) and adds it to every declustered volume's
// layout, each volume rebalancing its fair share of chunks onto the
// newcomer in the background, paced by the shared RebuildRateMBps budget.
// Returns the new drive index immediately; WaitRebalance observes
// convergence. Fixed-layout volumes are unaffected — their windows stay
// where they are.
func (p *Pool) AddDrive() (int, error) {
	var grow []*Array
	for _, a := range p.arrays {
		if a.host.Declustered() {
			if a.sup == nil {
				return 0, fmt.Errorf("draid: AddDrive: volume %q has no supervisor (configure PoolConfig.Spares)", a.vol.Name)
			}
			grow = append(grow, a)
		}
	}
	if len(grow) == 0 {
		return 0, fmt.Errorf("draid: AddDrive: pool has no declustered volumes: %w", ErrUnsupported)
	}
	node, ok := p.cl.Spares.Claim()
	if !ok {
		return 0, fmt.Errorf("draid: no spare endpoint left to add")
	}
	idx := -1
	p.pending = nil
	for _, a := range grow {
		arr := a
		arr.rebalDone, arr.rebalErr = false, nil
		i, err := arr.sup.AddDrive(node, func(e error) { arr.rebalErr, arr.rebalDone = e, true })
		if err != nil {
			return 0, err
		}
		idx = i
		p.pending = append(p.pending, arr)
	}
	return idx, nil
}

// RemoveDrive drains drive i out of every declustered volume's layout and
// retires it — online shrink. Returns immediately; WaitRebalance observes
// the drains. Fails if any volume's fixed window covers the drive, since a
// fixed layout cannot give it up.
func (p *Pool) RemoveDrive(i int) error {
	for _, a := range p.arrays {
		if !a.host.Declustered() && i < a.host.Drives() {
			return fmt.Errorf("draid: RemoveDrive: fixed-layout volume %q stripes over drive %d: %w", a.vol.Name, i, ErrUnsupported)
		}
	}
	p.pending = nil
	for _, a := range p.arrays {
		if !a.host.Declustered() {
			continue
		}
		if a.sup == nil {
			return fmt.Errorf("draid: RemoveDrive: volume %q has no supervisor (configure PoolConfig.Spares)", a.vol.Name)
		}
		arr := a
		arr.rebalDone, arr.rebalErr = false, nil
		arr.sup.RemoveDrive(i, func(e error) { arr.rebalErr, arr.rebalDone = e, true })
		p.pending = append(p.pending, arr)
	}
	if len(p.pending) == 0 {
		return fmt.Errorf("draid: RemoveDrive: pool has no declustered volumes: %w", ErrUnsupported)
	}
	return nil
}

// WaitRebalance advances the shared clock until every migration started by
// the last AddDrive/RemoveDrive converges, returning the first error.
func (p *Pool) WaitRebalance() error {
	p.cl.Eng.Run()
	for _, a := range p.pending {
		if !a.rebalDone {
			return fmt.Errorf("draid: rebalance of volume %q stalled", a.vol.Name)
		}
		if a.rebalErr != nil {
			return a.rebalErr
		}
	}
	return nil
}

// TotalHostTraffic reports the shared host NIC counters (all volumes).
func (p *Pool) TotalHostTraffic() (out, in int64) { return p.cl.TotalHostBytes() }

// VolumeHostTraffic reports one volume's share of the host NIC.
func (p *Pool) VolumeHostTraffic(id int) (out, in int64) {
	return p.cl.VolumeHostBytes(core.VolumeID(id))
}

// ResetTraffic zeroes all NIC counters and the per-volume attribution.
func (p *Pool) ResetTraffic() { p.cl.ResetTraffic() }

// Trace returns the shared trace collector (nil unless Observe).
func (p *Pool) Trace() *Tracer { return p.cl.Tracer }

// SparesAvailable returns how many shared hot spares remain claimable.
func (p *Pool) SparesAvailable() int { return p.cl.Spares.Available() }
